"""Analytic DRAM-traffic model for MPK pipelines.

The model does transparent per-array byte accounting for one pass of each
kernel, with a single locality mechanism: a *miss fraction* for dense-
vector gathers, derived from the matrix's active window (its bandwidth)
versus the available last-level cache.  It is the paper-scale counterpart
of the trace-driven simulator in :mod:`repro.memsim.trace` (the test
suite cross-validates the two on small matrices) and feeds the machine
performance model that regenerates Figs 7, 8, 9, 10 and 12.

Accounting rules (per full pass over a matrix/triangle with ``nnz``
stored entries and ``n`` rows):

* matrix stream: ``nnz * (value_bytes + index_bytes) + (n+1) * index_bytes``
  — always read in full (compulsory, streaming);
* vector gathers: every distinct element once (compulsory, ``n * vb``)
  plus a miss term ``miss_fraction * (nnz - n) * vb`` for re-fetches when
  the active window exceeds the cache;
* the **BtB layout** (Section III-C) halves the *miss term* of paired
  gathers: the even/odd iterates share cache lines, so one fetch serves
  both accesses;
* writes cost ``n * vb`` plus an equal read-for-ownership when
  ``write_allocate`` is set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.plan import fbmpk_plan
from ..sparse.csr import CSRMatrix

__all__ = [
    "TrafficParams",
    "MatrixTrafficStats",
    "TrafficBreakdown",
    "miss_fraction",
    "spmv_traffic",
    "mpk_standard_traffic",
    "fbmpk_traffic",
    "levels_blocked_traffic",
    "levels_blocked_crossover",
    "traffic_ratio",
]


@dataclass(frozen=True)
class TrafficParams:
    """Byte-level constants of the modelled machine/kernel.

    ``index_bytes`` defaults to 4 (the int32 indices of production C
    kernels and MKL, which the paper's measurements reflect) even though
    this library's in-memory arrays are int64.
    """

    value_bytes: int = 8
    index_bytes: int = 4
    line_bytes: int = 64
    #: Charge a read-for-ownership for every written line.  Off by
    #: default: the modelled kernels write their outputs as dense
    #: sequential streams, which production kernels (and MKL) issue as
    #: non-temporal/write-combining stores.
    write_allocate: bool = False
    cache_utilization: float = 0.8


@dataclass(frozen=True)
class MatrixTrafficStats:
    """Structural inputs of the model for one matrix.

    ``bandwidth`` is the half-width of the active column window a row
    sweep drags through the source vector; for SuiteSparse-scale entries
    it is estimated from the problem dimensionality (see
    :meth:`repro.matrices.registry.MatrixInfo.bandwidth_estimate`).
    """

    n: int
    nnz: int
    bandwidth: float

    @classmethod
    def from_csr(cls, a: CSRMatrix) -> "MatrixTrafficStats":
        """Measure the stats (exact bandwidth) from an in-memory matrix."""
        from ..reorder.rcm import matrix_bandwidth

        return cls(n=a.n_rows, nnz=a.nnz,
                   bandwidth=float(max(matrix_bandwidth(a), 1)))

    @property
    def nnz_per_row(self) -> float:
        """Average stored entries per row."""
        return self.nnz / max(self.n, 1)


@dataclass
class TrafficBreakdown:
    """DRAM bytes split by source."""

    matrix_bytes: float = 0.0
    vector_read_bytes: float = 0.0
    vector_write_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        """All DRAM traffic (the Fig 9 read+write volume)."""
        return self.matrix_bytes + self.vector_read_bytes + self.vector_write_bytes

    def __iadd__(self, other: "TrafficBreakdown") -> "TrafficBreakdown":
        self.matrix_bytes += other.matrix_bytes
        self.vector_read_bytes += other.vector_read_bytes
        self.vector_write_bytes += other.vector_write_bytes
        return self


def miss_fraction(working_set_bytes: float, cache_bytes: float,
                  utilization: float = 0.8) -> float:
    """Fraction of non-compulsory gathers that miss the last-level cache.

    A smooth saturating form of "working set over cache": 0 while the
    window fits in the usable cache, approaching 1 as the window dwarfs
    it.  ``utilization`` discounts the cache for the streaming arrays and
    other residents that share it.
    """
    usable = max(cache_bytes * utilization, 1.0)
    if working_set_bytes <= usable:
        return 0.0
    return float(1.0 - usable / working_set_bytes)


def _write_cost(n_elems: float, params: TrafficParams) -> float:
    per = params.value_bytes * (2.0 if params.write_allocate else 1.0)
    return n_elems * per


def _gather_cost(unique: float, total_accesses: float, mf: float,
                 params: TrafficParams, paired_btb: bool = False) -> float:
    """Vector gather bytes: compulsory uniques + miss re-fetches.

    ``paired_btb`` marks gathers of an interleaved pair: one line fetch
    serves both elements of a pair, halving the miss term relative to two
    split arrays.
    """
    extra = max(total_accesses - unique, 0.0) * mf * params.value_bytes
    if paired_btb:
        extra *= 0.5
    return unique * params.value_bytes + extra


def _matrix_stream(nnz: float, n: float, params: TrafficParams) -> float:
    return nnz * (params.value_bytes + params.index_bytes) \
        + (n + 1) * params.index_bytes


def spmv_traffic(stats: MatrixTrafficStats, cache_bytes: float,
                 params: Optional[TrafficParams] = None) -> TrafficBreakdown:
    """One full SpMV pass ``y = A x`` from cold vectors."""
    params = params or TrafficParams()
    window = 2.0 * stats.bandwidth * params.value_bytes
    mf = miss_fraction(window, cache_bytes, params.cache_utilization)
    return TrafficBreakdown(
        matrix_bytes=_matrix_stream(stats.nnz, stats.n, params),
        vector_read_bytes=_gather_cost(stats.n, stats.nnz, mf, params),
        vector_write_bytes=_write_cost(stats.n, params),
    )


def mpk_standard_traffic(stats: MatrixTrafficStats, k: int,
                         cache_bytes: float,
                         params: Optional[TrafficParams] = None,
                         residency_cache_bytes: Optional[float] = None,
                         ) -> TrafficBreakdown:
    """Standard MPK: ``k`` SpMV passes ping-ponging two vectors.

    The vectors only generate *per-pass* DRAM traffic to the extent the
    live pair does not fit in the cache (``leak``): when it fits, the
    whole run pays one compulsory read of ``x`` and one final writeback —
    this is what makes measured ratios of very sparse matrices
    (``G3_circuit``) worse than the matrix-only theory in Fig 9.
    """
    params = params or TrafficParams()
    vb = params.value_bytes
    residency = cache_bytes if residency_cache_bytes is None \
        else residency_cache_bytes
    window = 2.0 * stats.bandwidth * vb
    mf = miss_fraction(window, cache_bytes, params.cache_utilization)
    live_set = 2.0 * stats.n * vb  # the x/y ping-pong pair
    leak = miss_fraction(live_set, residency, params.cache_utilization)
    per_pass_read = _gather_cost(stats.n, stats.nnz, mf, params)
    per_pass_write = _write_cost(stats.n, params)
    return TrafficBreakdown(
        matrix_bytes=_matrix_stream(stats.nnz, stats.n, params) * k,
        vector_read_bytes=stats.n * vb + leak * per_pass_read * k,
        vector_write_bytes=stats.n * vb + leak * per_pass_write * k,
    )


def fbmpk_traffic(stats: MatrixTrafficStats, k: int, cache_bytes: float,
                  params: Optional[TrafficParams] = None,
                  btb: bool = True,
                  residency_cache_bytes: Optional[float] = None,
                  ) -> TrafficBreakdown:
    """FBMPK traffic for ``A^k x`` (Fig 3b pipeline).

    Triangle pass counts come from :func:`repro.core.plan.fbmpk_plan`;
    each forward/backward stage gathers *both* live iterates along one
    triangle's pattern (hence the doubled gather count, halved again by
    BtB in the miss term) and reads/writes the ``tmpvec`` and diagonal
    streams.
    """
    params = params or TrafficParams()
    if k == 0:
        return TrafficBreakdown()
    plan = fbmpk_plan(k)
    n = float(stats.n)
    vb = params.value_bytes
    # Off-diagonal entries split between the triangles; the diagonal is a
    # separate dense vector in the L+U+d layout.
    tri_nnz = max((stats.nnz - stats.n) / 2.0, 0.0)
    # The pair window covers both interleaved iterates.
    window = 4.0 * stats.bandwidth * vb
    mf = miss_fraction(window, cache_bytes, params.cache_utilization)
    # FBMPK's live vector set is larger than the baseline's: the
    # interleaved pair, tmpvec and the diagonal all stay hot.  The leak
    # fraction converts per-stage streaming into actual DRAM traffic.
    residency = cache_bytes if residency_cache_bytes is None \
        else residency_cache_bytes
    live_set = 4.0 * n * vb
    leak = miss_fraction(live_set, residency, params.cache_utilization)

    out = TrafficBreakdown()
    # Triangle streams (plus their own row_ptr arrays).
    out.matrix_bytes += plan.l_passes * _matrix_stream(tri_nnz, n, params)
    out.matrix_bytes += plan.u_passes * _matrix_stream(tri_nnz, n, params)
    # Diagonal stream: once per produced iterate, leaking like a vector.
    out.matrix_bytes += leak * plan.d_passes * n * vb + n * vb

    # One-time compulsory traffic: read x0, write back the result pair.
    out.vector_read_bytes += n * vb
    out.vector_write_bytes += n * vb

    # Head (U x0): single-vector gathers into tmpvec.
    out.vector_read_bytes += leak * _gather_cost(n, tri_nnz, mf, params)
    out.vector_write_bytes += leak * _write_cost(n, params)
    stages = k - 1 if k % 2 else k  # forward+backward stages in the loop
    tail = 1 if k % 2 else 0
    for _ in range(stages):
        # Each stage gathers the iterate pair along one triangle
        # (2 accesses per stored entry), reads tmpvec, writes tmpvec and
        # one iterate.
        out.vector_read_bytes += leak * _gather_cost(
            2.0 * n, 2.0 * tri_nnz, mf, params, paired_btb=btb
        )
        out.vector_read_bytes += leak * n * vb  # tmpvec read
        out.vector_write_bytes += leak * _write_cost(2.0 * n, params)
    if tail:
        # Tail: L x_even plus the three-way reduction into y.
        out.vector_read_bytes += leak * _gather_cost(n, tri_nnz, mf, params)
        out.vector_read_bytes += leak * 2.0 * n * vb  # tmp + d*x
        out.vector_write_bytes += leak * _write_cost(n, params)
    return out


def levels_blocked_traffic(stats: MatrixTrafficStats, k: int,
                           cache_bytes: float,
                           params: Optional[TrafficParams] = None,
                           block_rows: int = 256,
                           residency_cache_bytes: Optional[float] = None,
                           ) -> TrafficBreakdown:
    """Levels-blocked (RACE-style) wavefront traffic for ``A^k x``.

    The schedule of :mod:`repro.reorder.levels_blocked` applies all
    ``k`` powers to a cache-sized block within a bounded phase window,
    so the matrix streams from DRAM *once* and the remaining ``k - 1``
    logical passes are served from cache — to the extent the wavefront's
    **diamond working set** fits: about ``2k - 1`` consecutive blocks
    stay live between a block's first and last visit (the skew of the
    schedule), each contributing its matrix bytes plus the two BtB
    iterate slots of its rows.  ``reload`` is the miss fraction of that
    window; the modelled matrix volume is ``1 + reload * (k - 1)``
    streams of A.

    The vector side distinguishes this family from the related-work
    LB-MPK baseline (:mod:`repro.baselines.lbmpk`, which keeps all
    ``k + 1`` iterate vectors live): the ping-pong pair bounds the live
    vector set at ``2 n`` values regardless of ``k``, exactly like the
    standard-MPK accounting.
    """
    params = params or TrafficParams()
    if k == 0:
        return TrafficBreakdown()
    vb = params.value_bytes
    n = float(stats.n)
    rows = float(min(max(block_rows, 1), max(stats.n, 1)))
    block_bytes = _matrix_stream(stats.nnz_per_row * rows, rows, params)
    window = (2.0 * k - 1.0) * (block_bytes + 2.0 * rows * vb)
    reload = miss_fraction(window, cache_bytes, params.cache_utilization)
    matrix_passes = 1.0 + reload * (k - 1.0)
    # Vector accounting mirrors mpk_standard_traffic: a 2n ping-pong
    # live set, per-power gathers leaking to DRAM only when it does not
    # stay resident.
    gather_window = 2.0 * stats.bandwidth * vb
    mf = miss_fraction(gather_window, cache_bytes,
                       params.cache_utilization)
    residency = cache_bytes if residency_cache_bytes is None \
        else residency_cache_bytes
    # Live vectors: the BtB pair plus the diagonal (read every power).
    leak = miss_fraction(3.0 * n * vb, residency,
                         params.cache_utilization)
    per_pass_read = _gather_cost(n, stats.nnz, mf, params)
    per_pass_write = _write_cost(n, params)
    matrix_bytes = _matrix_stream(stats.nnz, stats.n, params) \
        * matrix_passes
    # Diagonal stream: once per power, leaking like a vector (same
    # accounting as fbmpk_traffic's d_passes term).
    matrix_bytes += leak * k * n * vb + n * vb
    return TrafficBreakdown(
        matrix_bytes=matrix_bytes,
        vector_read_bytes=n * vb + leak * per_pass_read * k,
        vector_write_bytes=n * vb + leak * per_pass_write * k,
    )


def levels_blocked_crossover(stats: MatrixTrafficStats,
                             cache_bytes: float,
                             params: Optional[TrafficParams] = None,
                             block_rows: int = 256,
                             max_k: int = 64,
                             residency_cache_bytes: Optional[float] = None,
                             ) -> Optional[int]:
    """Smallest ``k`` at which the levels-blocked schedule is predicted
    to move fewer DRAM bytes than FBMPK on this matrix (``None`` if no
    crossover up to ``max_k``) — FBMPK's volume grows like ``(k+1)/2``
    matrix streams while a resident wavefront stays near one, so the
    prediction is the ``k`` where residency starts paying."""
    params = params or TrafficParams()
    for k in range(1, max_k + 1):
        lb = levels_blocked_traffic(
            stats, k, cache_bytes, params, block_rows=block_rows,
            residency_cache_bytes=residency_cache_bytes).total_bytes
        fb = fbmpk_traffic(
            stats, k, cache_bytes, params,
            residency_cache_bytes=residency_cache_bytes).total_bytes
        if lb < fb:
            return k
    return None


def traffic_ratio(stats: MatrixTrafficStats, k: int, cache_bytes: float,
                  params: Optional[TrafficParams] = None,
                  btb: bool = True,
                  residency_cache_bytes: Optional[float] = None,
                  method: str = "fbmpk",
                  block_rows: int = 256) -> float:
    """Modelled DRAM volume of ``method`` over standard MPK — the Fig 9
    quantity for ``method="fbmpk"`` (the default); with
    ``method="levels-blocked"`` the numerator is the blocked wavefront's
    volume (``block_rows`` sizes its resident blocks)."""
    params = params or TrafficParams()
    if method == "fbmpk":
        num = fbmpk_traffic(
            stats, k, cache_bytes, params, btb=btb,
            residency_cache_bytes=residency_cache_bytes).total_bytes
    elif method == "levels-blocked":
        num = levels_blocked_traffic(
            stats, k, cache_bytes, params, block_rows=block_rows,
            residency_cache_bytes=residency_cache_bytes).total_bytes
    else:
        raise ValueError(f"unknown method {method!r}")
    std = mpk_standard_traffic(
        stats, k, cache_bytes, params,
        residency_cache_bytes=residency_cache_bytes).total_bytes
    return num / std if std else float("nan")
