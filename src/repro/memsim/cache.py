"""Set-associative LRU cache simulator.

The paper quantifies its win with LIKWID DRAM counters (Fig 9).  Offline
we replace the counters with simulation: kernels emit address traces
(:mod:`repro.memsim.trace`) that run through a configurable cache
hierarchy; DRAM traffic is the miss volume at the last level.

The simulator is deliberately simple and well-specified so its behaviour
is testable: physical addresses are byte offsets in a flat space, lines
are ``line_bytes`` wide, placement is modulo-indexed, replacement is true
LRU per set, and stores are write-back/write-allocate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CacheConfig", "CacheLevel", "CacheStats"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    line_bytes: int = 64
    associativity: int = 8
    name: str = "cache"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise ValueError("cache geometry must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError(
                "size must be a multiple of line_bytes * associativity"
            )

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass
class CacheStats:
    """Access counters for one level."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses seen by this level."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Miss ratio (0 when the level saw no traffic)."""
        return self.misses / self.accesses if self.accesses else 0.0


class CacheLevel:
    """One set-associative LRU level with write-back/write-allocate.

    :meth:`access` returns True on hit.  Dirty evictions are counted as
    writebacks — the caller (the hierarchy) forwards them downstream.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        n_sets = config.n_sets
        ways = config.associativity
        # tags[set, way] = line tag (-1 empty); lru[set, way] = age rank
        # (0 = most recent); dirty[set, way] marks written lines.
        self._tags = np.full((n_sets, ways), -1, dtype=np.int64)
        self._lru = np.tile(np.arange(ways, dtype=np.int64), (n_sets, 1))
        self._dirty = np.zeros((n_sets, ways), dtype=bool)
        self.stats = CacheStats()

    def _locate(self, addr: int) -> tuple[int, int]:
        line = addr // self.config.line_bytes
        return int(line % self.config.n_sets), int(line // self.config.n_sets)

    def access(self, addr: int, write: bool = False) -> bool:
        """Touch the line containing ``addr``.  Returns True on hit.

        On miss the line is allocated (evicting the LRU way); the evicted
        line's dirtiness is recorded in ``stats.writebacks``.
        """
        set_idx, tag = self._locate(addr)
        tags = self._tags[set_idx]
        lru = self._lru[set_idx]
        hit_ways = np.nonzero(tags == tag)[0]
        if hit_ways.size:
            way = int(hit_ways[0])
            self.stats.hits += 1
        else:
            self.stats.misses += 1
            way = int(np.argmax(lru))  # the least recently used way
            if tags[way] != -1:
                self.stats.evictions += 1
                if self._dirty[set_idx, way]:
                    self.stats.writebacks += 1
            tags[way] = tag
            self._dirty[set_idx, way] = False
        if write:
            self._dirty[set_idx, way] = True
        # Age everything younger than the touched way, then reset it.
        lru[lru < lru[way]] += 1
        lru[way] = 0
        return bool(hit_ways.size)

    def contains(self, addr: int) -> bool:
        """Non-mutating lookup: is the line currently resident?"""
        set_idx, tag = self._locate(addr)
        return bool((self._tags[set_idx] == tag).any())

    def flush(self) -> int:
        """Invalidate everything; returns the number of dirty lines that
        would have been written back."""
        dirty = int(self._dirty.sum())
        self.stats.writebacks += dirty
        self._tags.fill(-1)
        self._dirty.fill(False)
        self._lru = np.tile(
            np.arange(self.config.associativity, dtype=np.int64),
            (self.config.n_sets, 1),
        )
        return dirty
