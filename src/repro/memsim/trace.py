"""Kernel address-trace generators for the cache simulation.

Each function walks a kernel exactly as the corresponding implementation
does and drives a :class:`repro.memsim.hierarchy.MemoryHierarchy` with
the resulting loads/stores.  A flat byte-address space is laid out per
run:

====================  =======================================
array                 placement
====================  =======================================
``row_ptr`` streams   contiguous, int32/int64 per config
``col_idx`` streams   contiguous
``values`` streams    contiguous
vectors               contiguous; BtB layout interleaves two
====================  =======================================

Traces are exact (every element access in program order) and therefore
only practical for the scale-reduced stand-ins; the analytic model in
:mod:`repro.memsim.traffic` extrapolates to paper scale and is validated
against these traces in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.partition import TriangularPartition
from ..sparse.csr import CSRMatrix
from .hierarchy import DramTraffic, MemoryHierarchy

__all__ = ["ArrayLayout", "trace_spmv", "trace_fbmpk_pair", "trace_mpk_standard"]


@dataclass
class ArrayLayout:
    """Byte sizes used when laying out the traced arrays."""

    value_bytes: int = 8
    index_bytes: int = 4

    def vector_bytes(self, n: int) -> int:
        """Bytes of a dense length-``n`` value vector."""
        return n * self.value_bytes


class _Allocator:
    """Bump allocator for the flat simulated address space, with
    line-aligned placements so arrays never share cache lines."""

    def __init__(self, line_bytes: int) -> None:
        self._next = 0
        self._line = line_bytes

    def alloc(self, n_bytes: int) -> int:
        addr = self._next
        self._next += ((n_bytes + self._line - 1) // self._line) * self._line
        return addr


def trace_spmv(
    a: CSRMatrix,
    hierarchy: MemoryHierarchy,
    layout: Optional[ArrayLayout] = None,
) -> DramTraffic:
    """Trace one CSR SpMV ``y = A x`` and return its DRAM traffic."""
    layout = layout or ArrayLayout()
    alloc = _Allocator(hierarchy.line_bytes)
    vb, ib = layout.value_bytes, layout.index_bytes
    base_ptr = alloc.alloc((a.n_rows + 1) * ib)
    base_idx = alloc.alloc(a.nnz * ib)
    base_val = alloc.alloc(a.nnz * vb)
    base_x = alloc.alloc(a.n_cols * vb)
    base_y = alloc.alloc(a.n_rows * vb)
    hierarchy.reset_stats()
    for i in range(a.n_rows):
        hierarchy.access(base_ptr + (i + 1) * ib)
        for p in range(int(a.indptr[i]), int(a.indptr[i + 1])):
            hierarchy.access(base_idx + p * ib)
            hierarchy.access(base_val + p * vb)
            hierarchy.access(base_x + int(a.indices[p]) * vb)
        hierarchy.access(base_y + i * vb, write=True)
    return hierarchy.dram


def trace_mpk_standard(
    a: CSRMatrix,
    k: int,
    hierarchy: MemoryHierarchy,
    layout: Optional[ArrayLayout] = None,
) -> DramTraffic:
    """Trace the standard MPK (Algorithm 1): ``k`` back-to-back SpMVs
    ping-ponging between two vectors."""
    layout = layout or ArrayLayout()
    alloc = _Allocator(hierarchy.line_bytes)
    vb, ib = layout.value_bytes, layout.index_bytes
    base_ptr = alloc.alloc((a.n_rows + 1) * ib)
    base_idx = alloc.alloc(a.nnz * ib)
    base_val = alloc.alloc(a.nnz * vb)
    vecs = [alloc.alloc(a.n_cols * vb), alloc.alloc(a.n_cols * vb)]
    hierarchy.reset_stats()
    for power in range(k):
        src, dst = vecs[power % 2], vecs[(power + 1) % 2]
        for i in range(a.n_rows):
            hierarchy.access(base_ptr + (i + 1) * ib)
            for p in range(int(a.indptr[i]), int(a.indptr[i + 1])):
                hierarchy.access(base_idx + p * ib)
                hierarchy.access(base_val + p * vb)
                hierarchy.access(src + int(a.indices[p]) * vb)
            hierarchy.access(dst + i * vb, write=True)
    return hierarchy.dram


def trace_fbmpk_pair(
    part: TriangularPartition,
    hierarchy: MemoryHierarchy,
    btb: bool = True,
    layout: Optional[ArrayLayout] = None,
    include_head: bool = True,
) -> DramTraffic:
    """Trace one forward+backward FBMPK iteration (two powers).

    ``btb`` selects the interleaved pair layout of Section III-C; with
    ``btb=False`` the two live iterates are separate arrays, so each
    row's pair of vector accesses touches two distinct cache lines.
    ``include_head`` additionally traces the head ``U x0`` pass.
    """
    layout = layout or ArrayLayout()
    alloc = _Allocator(hierarchy.line_bytes)
    vb, ib = layout.value_bytes, layout.index_bytes
    n = part.n
    L, U = part.lower, part.upper
    l_ptr = alloc.alloc((n + 1) * ib)
    l_idx = alloc.alloc(L.nnz * ib)
    l_val = alloc.alloc(L.nnz * vb)
    u_ptr = alloc.alloc((n + 1) * ib)
    u_idx = alloc.alloc(U.nnz * ib)
    u_val = alloc.alloc(U.nnz * vb)
    d_vec = alloc.alloc(n * vb)
    tmp = alloc.alloc(n * vb)
    if btb:
        xy = alloc.alloc(2 * n * vb)

        def addr_even(j: int) -> int:
            return xy + (2 * j) * vb

        def addr_odd(j: int) -> int:
            return xy + (2 * j + 1) * vb

    else:
        x_even = alloc.alloc(n * vb)
        x_odd = alloc.alloc(n * vb)

        def addr_even(j: int) -> int:
            return x_even + j * vb

        def addr_odd(j: int) -> int:
            return x_odd + j * vb

    hierarchy.reset_stats()
    if include_head:
        # Head: tmp = U x_even.
        for i in range(n):
            hierarchy.access(u_ptr + (i + 1) * ib)
            for p in range(int(U.indptr[i]), int(U.indptr[i + 1])):
                hierarchy.access(u_idx + p * ib)
                hierarchy.access(u_val + p * vb)
                hierarchy.access(addr_even(int(U.indices[p])))
            hierarchy.access(tmp + i * vb, write=True)
    # Forward stage: one pass over L updating both iterates (Alg 2, 7-16).
    for i in range(n):
        hierarchy.access(l_ptr + (i + 1) * ib)
        hierarchy.access(tmp + i * vb)
        hierarchy.access(d_vec + i * vb)
        hierarchy.access(addr_even(i))
        for p in range(int(L.indptr[i]), int(L.indptr[i + 1])):
            hierarchy.access(l_idx + p * ib)
            hierarchy.access(l_val + p * vb)
            j = int(L.indices[p])
            hierarchy.access(addr_even(j))
            hierarchy.access(addr_odd(j))
        hierarchy.access(addr_odd(i), write=True)
        hierarchy.access(tmp + i * vb, write=True)
    # Backward stage: one pass over U (Alg 2, lines 19-28).
    for i in range(n - 1, -1, -1):
        hierarchy.access(u_ptr + (i + 1) * ib)
        hierarchy.access(tmp + i * vb)
        for p in range(int(U.indptr[i + 1]) - 1, int(U.indptr[i]) - 1, -1):
            hierarchy.access(u_idx + p * ib)
            hierarchy.access(u_val + p * vb)
            j = int(U.indices[p])
            hierarchy.access(addr_odd(j))
            hierarchy.access(addr_even(j))
        hierarchy.access(addr_even(i), write=True)
        hierarchy.access(tmp + i * vb, write=True)
    return hierarchy.dram
