"""Multi-level cache hierarchy driving the trace simulation.

Levels are checked in order (L1 first); a miss at one level propagates to
the next, and a miss at the last level counts as DRAM traffic.  Dirty
evictions at the last level add DRAM write traffic.  This mirrors what
the LIKWID counters in the paper's Fig 9 measure: bytes moved between the
last-level cache and memory, reads plus writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from .cache import CacheConfig, CacheLevel

__all__ = ["MemoryHierarchy", "DramTraffic"]


@dataclass
class DramTraffic:
    """DRAM byte volumes accumulated over a trace."""

    read_bytes: int = 0
    write_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        """Reads plus writes (the Fig 9 quantity)."""
        return self.read_bytes + self.write_bytes


class MemoryHierarchy:
    """An ordered stack of :class:`CacheLevel` in front of DRAM.

    ``access`` touches a single address; ``access_run`` touches a
    contiguous byte range (element streams), advancing line by line so a
    64-byte line of a value stream costs one fill regardless of how many
    of its elements are consumed.
    """

    def __init__(self, configs: Sequence[CacheConfig]) -> None:
        if not configs:
            raise ValueError("hierarchy needs at least one level")
        line = configs[0].line_bytes
        for cfg in configs:
            if cfg.line_bytes != line:
                raise ValueError("all levels must share one line size")
        self.levels: List[CacheLevel] = [CacheLevel(c) for c in configs]
        self.line_bytes = line
        self.dram = DramTraffic()

    def access(self, addr: int, write: bool = False) -> int:
        """Touch one address; returns the level index that hit
        (``len(levels)`` means DRAM)."""
        for i, level in enumerate(self.levels):
            if level.access(addr, write=write and i == 0):
                return i
        self.dram.read_bytes += self.line_bytes
        if write:
            # Write-allocate: the line was fetched above; model the
            # eventual writeback eagerly (steady-state equivalence).
            self.dram.write_bytes += self.line_bytes
        return len(self.levels)

    def access_run(self, start: int, n_bytes: int, write: bool = False) -> None:
        """Touch every line of the byte range ``[start, start + n_bytes)``."""
        if n_bytes <= 0:
            return
        first = (start // self.line_bytes) * self.line_bytes
        last = ((start + n_bytes - 1) // self.line_bytes) * self.line_bytes
        for line_addr in range(first, last + 1, self.line_bytes):
            self.access(line_addr, write=write)

    def access_many(self, addrs: Iterable[int], write: bool = False) -> None:
        """Touch a sequence of (possibly scattered) addresses in order."""
        for a in addrs:
            self.access(int(a), write=write)

    def reset_stats(self) -> None:
        """Zero all counters (cache contents are kept)."""
        self.dram = DramTraffic()
        for level in self.levels:
            level.stats.__init__()

    def stats_table(self) -> List[Tuple[str, int, int, float]]:
        """Per-level ``(name, hits, misses, miss_rate)`` rows."""
        return [
            (lv.config.name, lv.stats.hits, lv.stats.misses, lv.stats.miss_rate)
            for lv in self.levels
        ]
