"""Structural validators for matrices, sweep plans and vectors.

Every FBMPK layer trusts its inputs: a CSR matrix with an out-of-range
column index silently gathers garbage, a sweep group that breaks the
dependency invariant produces wrong-but-finite results, and a single NaN
propagates through ``k`` powers unnoticed.  These validators make those
assumptions checkable — cheaply enough to run on load (``repro --validate``)
and thoroughly enough that the fault-injection suite can corrupt any
field of a matrix and watch the right issue surface.

Validators return a :class:`ValidationReport` (a list of
:class:`Issue` findings with severities) rather than raising on first
fault, so a harness can log everything wrong with a file at once;
``report.raise_if_failed()`` converts error-level findings into a
:class:`~repro.robust.errors.ValidationError`.

The functions deliberately duck-type their arguments (anything with
``indptr``/``indices``/``data``/``shape`` works) and re-check invariants
the constructors may have been told to skip (``check=False``), because
the whole point is to distrust the object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from .errors import NonFiniteError, ValidationError

__all__ = [
    "Issue",
    "ValidationReport",
    "validate_csr",
    "validate_coo",
    "validate_sweep_groups",
    "validate_phases",
    "ensure_finite",
]


@dataclass(frozen=True)
class Issue:
    """One validation finding.

    ``code`` is a stable machine-readable slug (tests key on it),
    ``severity`` is ``"error"`` for invariant violations and
    ``"warning"`` for legal-but-suspicious structure (duplicates,
    unsorted rows).
    """

    code: str
    message: str
    severity: str = "error"


@dataclass
class ValidationReport:
    """Findings of one validator run over one object."""

    subject: str
    issues: List[Issue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no *error*-level issue was found."""
        return not any(i.severity == "error" for i in self.issues)

    @property
    def errors(self) -> List[Issue]:
        """The error-level findings."""
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> List[Issue]:
        """The warning-level findings."""
        return [i for i in self.issues if i.severity == "warning"]

    def add(self, code: str, message: str, severity: str = "error") -> None:
        """Record a finding."""
        self.issues.append(Issue(code=code, message=message,
                                 severity=severity))

    def raise_if_failed(self) -> "ValidationReport":
        """Raise :class:`ValidationError` when error-level issues exist;
        return ``self`` otherwise (chainable)."""
        bad = self.errors
        if bad:
            lines = "; ".join(f"[{i.code}] {i.message}" for i in bad)
            raise ValidationError(
                f"{self.subject} failed validation: {lines}", issues=bad)
        return self

    def __str__(self) -> str:
        if not self.issues:
            return f"{self.subject}: ok"
        lines = [f"{self.subject}: {len(self.errors)} error(s), "
                 f"{len(self.warnings)} warning(s)"]
        lines += [f"  {i.severity}[{i.code}]: {i.message}"
                  for i in self.issues]
        return "\n".join(lines)


def ensure_finite(arr, where: str = "array") -> None:
    """Raise :class:`NonFiniteError` unless every entry of ``arr`` is
    finite.  One vectorised pass; the error reports how many entries are
    bad and where the first one sits."""
    arr = np.asarray(arr)
    if arr.size == 0:
        return
    finite = np.isfinite(arr)
    if finite.all():
        return
    bad = ~finite.ravel()
    raise NonFiniteError(where, count=int(bad.sum()),
                         first_index=int(np.argmax(bad)))


# ---------------------------------------------------------------------------
# matrix validators
# ---------------------------------------------------------------------------
def validate_csr(a, name: str = "CSR matrix") -> ValidationReport:
    """Check every structural invariant of a CSR matrix.

    Findings (error level unless noted): ``indptr-length``,
    ``indptr-start``, ``indptr-monotone``, ``indptr-end``,
    ``array-length``, ``col-range``, ``non-finite``; warning level:
    ``unsorted-row``, ``duplicate-entry``.
    """
    rep = ValidationReport(subject=name)
    indptr = np.asarray(a.indptr)
    indices = np.asarray(a.indices)
    data = np.asarray(a.data)
    n_rows, n_cols = int(a.shape[0]), int(a.shape[1])
    if indptr.shape[0] != n_rows + 1:
        rep.add("indptr-length",
                f"indptr has length {indptr.shape[0]}, "
                f"expected n_rows + 1 = {n_rows + 1}")
        return rep  # row structure unusable; later checks would misreport
    if indptr.size and indptr[0] != 0:
        rep.add("indptr-start", f"indptr[0] is {int(indptr[0])}, expected 0")
    diffs = np.diff(indptr)
    if (diffs < 0).any():
        row = int(np.argmax(diffs < 0))
        rep.add("indptr-monotone",
                f"indptr decreases at row {row} "
                f"({int(indptr[row])} -> {int(indptr[row + 1])})")
    if int(indptr[-1]) != indices.shape[0]:
        rep.add("indptr-end",
                f"indptr[-1] = {int(indptr[-1])} but {indices.shape[0]} "
                f"column indices are stored")
    if indices.shape[0] != data.shape[0]:
        rep.add("array-length",
                f"{indices.shape[0]} indices vs {data.shape[0]} values")
    if indices.size:
        out = (indices < 0) | (indices >= n_cols)
        if out.any():
            k = int(np.argmax(out))
            rep.add("col-range",
                    f"{int(out.sum())} column indices outside [0, {n_cols}) "
                    f"(first: entry {k} has column {int(indices[k])})")
    if data.size:
        finite = np.isfinite(data)
        if not finite.all():
            k = int(np.argmax(~finite))
            rep.add("non-finite",
                    f"{int((~finite).sum())} non-finite stored values "
                    f"(first: entry {k} = {data.ravel()[k]!r})")
    # Row-local structure (only meaningful when the row pointers are sane).
    if rep.ok and indices.size and (diffs >= 0).all():
        row_of = np.repeat(np.arange(n_rows, dtype=np.int64), diffs)
        same_row = row_of[1:] == row_of[:-1]
        steps = np.diff(indices)
        if (same_row & (steps < 0)).any():
            row = int(row_of[1:][same_row & (steps < 0)][0])
            rep.add("unsorted-row",
                    f"column indices of row {row} are not sorted",
                    severity="warning")
        if (same_row & (steps == 0)).any():
            row = int(row_of[1:][same_row & (steps == 0)][0])
            rep.add("duplicate-entry",
                    f"row {row} stores the same column twice",
                    severity="warning")
    return rep


def validate_coo(a, name: str = "COO matrix") -> ValidationReport:
    """Check the invariants of a COO matrix (parallel arrays, index
    ranges, finite payload); duplicates are a warning (legal assembly
    semantics, summed on CSR conversion)."""
    rep = ValidationReport(subject=name)
    rows = np.asarray(a.rows)
    cols = np.asarray(a.cols)
    data = np.asarray(a.data)
    n_rows, n_cols = int(a.shape[0]), int(a.shape[1])
    if not (rows.shape == cols.shape == data.shape):
        rep.add("array-length",
                f"rows/cols/data shapes differ: {rows.shape}, "
                f"{cols.shape}, {data.shape}")
        return rep
    if rows.size:
        bad_r = (rows < 0) | (rows >= n_rows)
        if bad_r.any():
            k = int(np.argmax(bad_r))
            rep.add("row-range",
                    f"{int(bad_r.sum())} row indices outside [0, {n_rows}) "
                    f"(first: entry {k} = {int(rows[k])})")
        bad_c = (cols < 0) | (cols >= n_cols)
        if bad_c.any():
            k = int(np.argmax(bad_c))
            rep.add("col-range",
                    f"{int(bad_c.sum())} column indices outside "
                    f"[0, {n_cols}) (first: entry {k} = {int(cols[k])})")
        finite = np.isfinite(data)
        if not finite.all():
            k = int(np.argmax(~finite))
            rep.add("non-finite",
                    f"{int((~finite).sum())} non-finite values "
                    f"(first: entry {k} = {data[k]!r})")
        if rep.ok:
            key = rows.astype(np.int64) * n_cols + cols
            uniq = np.unique(key)
            if uniq.shape[0] != key.shape[0]:
                rep.add("duplicate-entry",
                        f"{key.shape[0] - uniq.shape[0]} duplicate "
                        f"coordinates (summed on CSR conversion)",
                        severity="warning")
    return rep


# ---------------------------------------------------------------------------
# plan validators
# ---------------------------------------------------------------------------
def _validate_one_sweep(tri, groups: Sequence[np.ndarray], sweep: str,
                        rep: ValidationReport) -> None:
    """Partition-of-rows plus dependency-direction check for one sweep.

    Mirrors :func:`repro.core.fbmpk.check_sweep_groups` but reports *what*
    is wrong instead of a bare bool.
    """
    n = int(tri.shape[0])
    rank = np.full(n, -1, dtype=np.int64)
    for g, rows in enumerate(groups):
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and ((rows < 0) | (rows >= n)).any():
            rep.add(f"{sweep}-row-range",
                    f"{sweep} group {g} references rows outside [0, {n})")
            return
        taken = rank[rows] != -1
        if taken.any():
            rep.add(f"{sweep}-overlap",
                    f"{sweep} group {g} re-uses row "
                    f"{int(rows[np.argmax(taken)])} "
                    f"already claimed by group "
                    f"{int(rank[rows[np.argmax(taken)]])}")
            return
        rank[rows] = g
    missing = rank < 0
    if missing.any():
        rep.add(f"{sweep}-coverage",
                f"{int(missing.sum())} rows not covered by any {sweep} "
                f"group (first: row {int(np.argmax(missing))})")
        return
    row_nnz = np.diff(np.asarray(tri.indptr))
    rows_exp = np.repeat(np.arange(n, dtype=np.int64), row_nnz)
    cols = np.asarray(tri.indices)
    forward_dep = rank[cols] >= rank[rows_exp]
    if forward_dep.any():
        k = int(np.argmax(forward_dep))
        rep.add(f"{sweep}-dependency",
                f"{sweep} sweep entry ({int(rows_exp[k])}, {int(cols[k])}) "
                f"depends on group {int(rank[cols[k]])} which does not "
                f"precede group {int(rank[rows_exp[k]])}")


def validate_sweep_groups(part, groups,
                          name: str = "sweep groups") -> ValidationReport:
    """Validate a :class:`~repro.core.fbmpk.SweepGroups` against both
    triangles of an ``L + D + U`` partition: each sweep's groups must
    partition the rows and every stored dependency must point to a
    strictly earlier group of that sweep."""
    rep = ValidationReport(subject=name)
    _validate_one_sweep(part.lower, groups.forward, "forward", rep)
    _validate_one_sweep(part.upper, groups.backward, "backward", rep)
    return rep


def validate_phases(tri, phases, name: str = "phase plan") -> ValidationReport:
    """Validate a block-phase schedule for one triangle.

    The executability invariant of
    :class:`~repro.parallel.executor.ThreadedPhaseExecutor`: tasks
    partition the rows, and every stored entry points to a strictly
    earlier phase or stays within its own task (same-phase cross-task
    dependencies would race).
    """
    rep = ValidationReport(subject=name)
    n = int(tri.shape[0])
    phase_of = np.full(n, -1, dtype=np.int64)
    task_of = np.full(n, -1, dtype=np.int64)
    tid = 0
    for pi, phase in enumerate(phases):
        for t in phase.tasks:
            if not (0 <= t.start <= t.stop <= n):
                rep.add("task-range",
                        f"phase {pi} task [{t.start}, {t.stop}) is outside "
                        f"[0, {n})")
                return rep
            if (phase_of[t.start:t.stop] != -1).any():
                rep.add("task-overlap",
                        f"phase {pi} task [{t.start}, {t.stop}) overlaps "
                        f"rows of an earlier task")
                return rep
            phase_of[t.start:t.stop] = pi
            task_of[t.start:t.stop] = tid
            tid += 1
    missing = phase_of < 0
    if missing.any():
        rep.add("coverage",
                f"{int(missing.sum())} rows not covered by any task "
                f"(first: row {int(np.argmax(missing))})")
        return rep
    rows_exp = np.repeat(np.arange(n, dtype=np.int64),
                         np.diff(np.asarray(tri.indptr)))
    cols = np.asarray(tri.indices)
    races = ~((phase_of[cols] < phase_of[rows_exp])
              | (task_of[cols] == task_of[rows_exp]))
    if races.any():
        k = int(np.argmax(races))
        rep.add("dependency",
                f"entry ({int(rows_exp[k])}, {int(cols[k])}) crosses tasks "
                f"within phase {int(phase_of[rows_exp[k]])} — would race")
    return rep
