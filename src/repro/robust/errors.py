"""Typed error taxonomy of the robustness layer.

Every failure the library can *detect* maps onto one of these classes, so
callers (and the CLI's exit-code mapping) can tell apart:

* malformed input files        -> :class:`MatrixMarketError`
* broken matrix/plan structure -> :class:`ValidationError`
* NaN/Inf payloads or iterates -> :class:`NonFiniteError`
* crashed parallel phases      -> :class:`PhaseExecutionError`
* blown deadlines / budgets    -> :class:`DeadlineExceededError`
* deliberately injected faults -> :class:`InjectedFault`

The classes double-inherit from the builtin exception the pre-robustness
code used to raise (``ValueError``/``RuntimeError``), so existing
``except ValueError`` call sites keep working while new code can catch
the precise type.  This module is deliberately dependency-free (not even
numpy) so any layer of the package may import it without cycles.
"""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = [
    "ReproError",
    "ValidationError",
    "NonFiniteError",
    "MatrixMarketError",
    "PhaseExecutionError",
    "SolverBreakdownError",
    "DeadlineExceededError",
    "InjectedFault",
]


class ReproError(Exception):
    """Base class of every error the library raises deliberately."""


class ValidationError(ReproError, ValueError):
    """A structural invariant of a matrix, plan or vector is violated.

    ``issues`` (when present) carries the individual findings of a
    :class:`repro.robust.validate.ValidationReport`.
    """

    def __init__(self, message: str, issues: Optional[list] = None) -> None:
        super().__init__(message)
        self.issues = issues or []


class NonFiniteError(ValidationError):
    """A NaN or Inf was found where only finite values are allowed.

    ``where`` names the offending array (e.g. ``"input vector x"`` or
    ``"iterate A^3 x"``); ``count`` is the number of non-finite entries
    and ``first_index`` the flat index of the first one.
    """

    def __init__(self, where: str, count: int = 0,
                 first_index: Optional[int] = None) -> None:
        msg = f"non-finite values in {where}"
        if count:
            msg += f" ({count} entries, first at index {first_index})"
        super().__init__(msg)
        self.where = where
        self.count = count
        self.first_index = first_index


class MatrixMarketError(ReproError, ValueError):
    """A MatrixMarket file could not be parsed.

    ``source`` is the file name (or ``"<stream>"``), ``line`` the 1-based
    line number the problem was detected at; both are baked into
    ``str(exc)`` so the CLI's one-line message is self-contained.
    """

    def __init__(self, message: str, *, source: Optional[str] = None,
                 line: Optional[int] = None) -> None:
        prefix = ""
        if source is not None:
            prefix = f"{source}:"
            if line is not None:
                prefix += f"{line}:"
            prefix += " "
        elif line is not None:
            prefix = f"line {line}: "
        super().__init__(prefix + message)
        self.source = source
        self.line = line


class PhaseExecutionError(ReproError, RuntimeError):
    """A block task crashed inside the threaded colour-phase executor.

    Carries the full scheduling context of the failed task: the phase's
    position in the sweep (``phase_index``), its colour, the block's row
    range, and the static thread bin it was assigned to.  The original
    worker exception is chained as ``__cause__`` — and, unlike plain
    exceptions, the chain survives pickling (the process executor ships
    these across ``multiprocessing`` queues, where default pickling
    would silently drop the cause).
    """

    def __init__(self, message: str, *,
                 phase_index: Optional[int] = None,
                 color: Optional[int] = None,
                 block: Optional[Tuple[int, int]] = None,
                 thread: Optional[int] = None) -> None:
        ctx = []
        if phase_index is not None:
            ctx.append(f"phase {phase_index}")
        if color is not None:
            ctx.append(f"colour {color}")
        if block is not None:
            ctx.append(f"block rows [{block[0]}, {block[1]})")
        if thread is not None:
            ctx.append(f"thread bin {thread}")
        if ctx:
            message = f"{message} ({', '.join(ctx)})"
        super().__init__(message)
        self.phase_index = phase_index
        self.color = color
        self.block = block
        self.thread = thread

    def __reduce__(self):
        cls, args = type(self), self.args
        state = dict(self.__dict__)
        state["_pickled_cause"] = self.__cause__
        return cls, args, state

    def __setstate__(self, state):
        cause = state.pop("_pickled_cause", None)
        self.__dict__.update(state)
        if cause is not None:
            self.__cause__ = cause


class SolverBreakdownError(ReproError, RuntimeError):
    """Raised only when a caller explicitly asks a solver wrapper to turn
    a structured failure status into an exception (the solvers themselves
    return statuses; see ``CGResult.status`` / ``KrylovResult.status``)."""

    def __init__(self, message: str, status: str = "breakdown") -> None:
        super().__init__(message)
        self.status = status


class DeadlineExceededError(ReproError, RuntimeError):
    """Work was refused or abandoned because its deadline expired.

    ``what`` names the operation that ran out of time (baked into
    ``str(exc)``); ``overrun_s``, when known, is how far past the
    deadline the check happened.  Raised by
    :meth:`repro.robust.resilience.Deadline.require` and mapped by the
    serving layer onto the ``deadline_exceeded`` wire status and by the
    CLI onto its own exit code.
    """

    def __init__(self, what: str = "operation",
                 overrun_s: Optional[float] = None) -> None:
        msg = f"deadline exceeded for {what}"
        if overrun_s is not None:
            msg += f" (overran by {max(0.0, overrun_s):.3f}s)"
        super().__init__(msg)
        self.what = what
        self.overrun_s = overrun_s


class InjectedFault(ReproError, RuntimeError):
    """Default exception raised by :class:`repro.robust.faults.RaiseFault`.

    Distinct from every organic error type so tests can assert that a
    failure truly originated from the injection registry.
    """

    def __init__(self, site: str, message: str = "") -> None:
        super().__init__(message or f"injected fault at site {site!r}")
        self.site = site
