"""Resilience primitives: deadlines, retry policies, circuit breakers.

The serving stack (PR 6) made the library long-running; this module
makes it *time-bounded*.  Three small, dependency-light primitives that
every layer above can share:

:class:`Deadline`
    A point on the monotonic clock by which work must finish.  Created
    once at the edge (e.g. from a request's ``deadline_ms``) and passed
    down through queues and registries, so each layer asks the same
    clock the same question — "is there still time for this?" — instead
    of re-deriving its own timeout.  :meth:`Deadline.require` turns an
    expired deadline into a typed
    :class:`~repro.robust.errors.DeadlineExceededError`.

:class:`RetryPolicy`
    Exponential backoff with full jitter (the AWS-architecture-blog
    variant: ``sleep = uniform(0, min(cap, base * 2**attempt))``).
    Fixed-interval retries synchronise clients into thundering herds;
    full jitter spreads them out, which is why ``tools/serve_client.py``
    dials with this policy instead of a fixed 100 ms loop.

:class:`CircuitBreaker`
    A thread-safe closed → open → half-open state machine guarding an
    operation that can fail or blow its time budget repeatedly (the
    motivating case: a 34–55 s autotune search).  After
    ``failure_threshold`` consecutive failures the breaker *opens* and
    :meth:`CircuitBreaker.allow` answers False — callers shed to their
    degraded path immediately instead of queueing up behind a doomed
    operation.  After ``reset_timeout_s`` the breaker goes *half-open*
    and admits up to ``half_open_probes`` trial calls; one success
    closes it again, one failure re-opens it.

All telemetry goes through :mod:`repro.obs` and is therefore free when
no session is active.  A breaker named ``tune`` emits
``tune.breaker.open`` / ``tune.breaker.short_circuit`` counters and a
``tune.breaker.state`` gauge (0 closed, 1 half-open, 2 open).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional

from .. import obs
from .errors import DeadlineExceededError

__all__ = [
    "Deadline",
    "DeadlineExceededError",
    "RetryPolicy",
    "CircuitBreaker",
    "BREAKER_STATES",
]


class Deadline:
    """A monotonic-clock point by which work must complete.

    Immutable and cheap; pass one object through every layer handling
    the same request.  ``Deadline(None)`` (or :meth:`never`) never
    expires, so call sites need no ``if deadline is not None`` guards.
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: Optional[float]) -> None:
        #: Absolute ``time.monotonic()`` value, or None for "never".
        self.expires_at = None if expires_at is None else float(expires_at)

    # -- constructors ---------------------------------------------------
    @classmethod
    def after(cls, seconds: Optional[float]) -> "Deadline":
        """Deadline ``seconds`` from now (None → never expires)."""
        if seconds is None:
            return cls(None)
        return cls(time.monotonic() + float(seconds))

    @classmethod
    def after_ms(cls, ms: Optional[float]) -> "Deadline":
        """Deadline ``ms`` milliseconds from now (None → never)."""
        return cls.after(None if ms is None else float(ms) / 1000.0)

    @classmethod
    def never(cls) -> "Deadline":
        """A deadline that never expires."""
        return cls(None)

    # -- queries --------------------------------------------------------
    @property
    def bounded(self) -> bool:
        """Whether this deadline can ever expire."""
        return self.expires_at is not None

    def remaining(self) -> Optional[float]:
        """Seconds left (may be negative once expired); None if
        unbounded."""
        if self.expires_at is None:
            return None
        return self.expires_at - time.monotonic()

    def remaining_or(self, default: float) -> float:
        """Seconds left, or ``default`` when unbounded — the form wait
        primitives want (``q.get(timeout=d.remaining_or(0.2))``)."""
        rem = self.remaining()
        return default if rem is None else rem

    def expired(self) -> bool:
        """True once the monotonic clock has passed the deadline."""
        return self.expires_at is not None \
            and time.monotonic() >= self.expires_at

    def require(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceededError` if expired (else no-op)."""
        if self.expired():
            raise DeadlineExceededError(what,
                                        overrun_s=-self.remaining())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.expires_at is None:
            return "Deadline(never)"
        return f"Deadline(in {self.remaining():+.3f}s)"


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter.

    ``delay(attempt)`` for attempt 0, 1, 2, ... draws uniformly from
    ``[0, min(max_delay_s, base_delay_s * 2**attempt)]`` — full jitter.
    ``jitter="none"`` gives the deterministic envelope instead (used by
    tests asserting the cap).  :meth:`delays` yields delays while a
    :class:`Deadline` still has time, capping the sleep to what
    remains, so a retry loop can never overshoot its total budget.
    """

    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: str = "full"  # "full" | "none"

    def __post_init__(self) -> None:
        if self.base_delay_s <= 0:
            raise ValueError("base_delay_s must be positive")
        if self.max_delay_s < self.base_delay_s:
            raise ValueError("max_delay_s must be >= base_delay_s")
        if self.jitter not in ("full", "none"):
            raise ValueError(f"unknown jitter mode {self.jitter!r}")

    def delay(self, attempt: int,
              rng: Optional[random.Random] = None) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        # min() before the power could overflow is unnecessary: cap the
        # exponent so 2**attempt stays a small float.
        exp = min(int(attempt), 63)
        cap = min(self.max_delay_s, self.base_delay_s * (2.0 ** exp))
        if self.jitter == "none":
            return cap
        return (rng or random).uniform(0.0, cap)

    def delays(self, deadline: Deadline,
               rng: Optional[random.Random] = None) -> Iterator[float]:
        """Yield successive backoff delays until ``deadline`` expires,
        each clipped to the time remaining."""
        attempt = 0
        while not deadline.expired():
            d = self.delay(attempt, rng)
            rem = deadline.remaining()
            if rem is not None:
                if rem <= 0:
                    return
                d = min(d, rem)
            yield d
            attempt += 1


#: Breaker states, in escalation order; the ``<name>.breaker.state``
#: gauge publishes the index.
BREAKER_STATES = ("closed", "half_open", "open")


class CircuitBreaker:
    """Thread-safe closed → open → half-open circuit breaker.

    Protocol::

        if breaker.allow():
            try:
                result = risky()
            except Exception:
                breaker.record_failure()
                raise
            breaker.record_success()
        else:
            result = degraded()   # shed immediately

    ``allow()`` is where the state machine lives: it re-arms an open
    breaker into half-open once ``reset_timeout_s`` has passed, admits
    at most ``half_open_probes`` concurrent trial calls in half-open,
    and counts every refusal as ``<name>.breaker.short_circuit``.
    A probe's ``record_success`` closes the breaker; ``record_failure``
    re-opens it (and restarts the reset clock).
    """

    def __init__(self, name: str = "breaker",
                 failure_threshold: int = 3,
                 reset_timeout_s: float = 30.0,
                 half_open_probes: int = 1,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be positive")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self.half_open_probes = int(half_open_probes)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0          # consecutive failures while closed
        self._opened_at: Optional[float] = None
        self._probes = 0            # in-flight half-open trial calls

    # -- state ----------------------------------------------------------
    def _resolve_state_locked(self) -> str:
        if self._state == "open" and self._opened_at is not None \
                and self._clock() - self._opened_at >= self.reset_timeout_s:
            self._state = "half_open"
            self._probes = 0
            obs.add_counter(f"{self.name}.breaker.half_open")
        return self._state

    @property
    def state(self) -> str:
        """Current state (``closed``/``half_open``/``open``), resolving
        an elapsed reset timeout."""
        with self._lock:
            return self._resolve_state_locked()

    def snapshot(self) -> Dict[str, Any]:
        """Introspection dict for health endpoints and logs."""
        with self._lock:
            state = self._resolve_state_locked()
            return {
                "name": self.name,
                "state": state,
                "consecutive_failures": self._failures,
                "failure_threshold": self.failure_threshold,
                "reset_timeout_s": self.reset_timeout_s,
            }

    def _publish_state_locked(self) -> None:
        obs.set_gauge(f"{self.name}.breaker.state",
                      BREAKER_STATES.index(self._state))

    # -- the protocol ---------------------------------------------------
    def allow(self) -> bool:
        """Whether a call may proceed now (False → shed immediately)."""
        with self._lock:
            state = self._resolve_state_locked()
            if state == "closed":
                return True
            if state == "half_open" and self._probes < self.half_open_probes:
                self._probes += 1
                obs.add_counter(f"{self.name}.breaker.probes")
                return True
            obs.add_counter(f"{self.name}.breaker.short_circuit")
            return False

    def record_success(self) -> None:
        """A guarded call succeeded: reset (and close after a probe)."""
        with self._lock:
            state = self._resolve_state_locked()
            if state == "half_open":
                self._state = "closed"
                obs.add_counter(f"{self.name}.breaker.close")
            self._failures = 0
            self._opened_at = None
            self._probes = 0
            self._publish_state_locked()

    def record_failure(self) -> None:
        """A guarded call failed (raised or blew its budget)."""
        with self._lock:
            state = self._resolve_state_locked()
            self._failures += 1
            if state == "half_open" \
                    or self._failures >= self.failure_threshold:
                if self._state != "open":
                    obs.add_counter(f"{self.name}.breaker.open")
                self._state = "open"
                self._opened_at = self._clock()
                self._probes = 0
            self._publish_state_locked()

    def reset(self) -> None:
        """Force-close (tests and operator intervention)."""
        with self._lock:
            self._state = "closed"
            self._failures = 0
            self._opened_at = None
            self._probes = 0
            self._publish_state_locked()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CircuitBreaker({self.name!r}, state={self.state!r}, "
                f"failures={self._failures})")
