"""Deterministic, seedable fault injection.

Two complementary facilities, both driven by the fault-injection test
suite (``tests/robust``) and exposed to users through the library API:

**Data corruption** — :class:`FaultInjector` methods that return
*corrupted copies* of matrices and vectors (NaN/Inf payloads, huge
values, out-of-range column indices).  All randomness flows from the
injector's seeded generator, so a corruption is reproducible from
``(seed, call sequence)`` alone.

**Chaos hooks** — an injection *registry* mapping site names (e.g.
``"executor.task"``) to fault actions (:class:`RaiseFault`,
:class:`DelayFault`).  Production code calls :func:`fire` at its hook
points; the call is a no-op attribute check unless an injector has been
activated (``with injector: ...``), so the hooks cost nothing in normal
operation — the usual chaos-engineering deal.

Hook sites currently wired up:

``"executor.task"``
    Fired by :class:`repro.parallel.executor.ThreadedPhaseExecutor`
    before each block task runs, with context ``phase_index``, ``color``,
    ``start``, ``stop``, ``thread``.  A :class:`RaiseFault` here models a
    crashed worker; a :class:`DelayFault` models a straggler block; a
    :class:`HangFault` models a worker that stops making progress
    entirely (the watchdog's prey).

``"procexec.heartbeat"``
    Fired inside a :class:`repro.parallel.procexec.ProcessPhaseExecutor`
    *worker process* just before it stamps its heartbeat for a block,
    with context ``worker``, ``phase_index``, ``color``.  Because the
    injector is inherited across ``fork``, a :class:`HangFault` here
    stalls the worker without stalling the parent — exactly the
    alive-but-silent condition the heartbeat watchdog must convert into
    a SIGKILL + serial fallback.

``"serve.request"``
    Fired by :class:`repro.serve.service.SolveService` for each accepted
    ``power`` request, with context ``tenant``, ``rid``.

``"serve.batch"``
    Fired by the batcher's compute worker thread just before a sealed
    batch runs its sweep, with context ``tenant``, ``width``.  Hangs
    here stall a batch without stalling the event loop, so deadlines
    and health checks stay live — the soak test's favourite site.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from .errors import InjectedFault

__all__ = [
    "Fault",
    "RaiseFault",
    "DelayFault",
    "HangFault",
    "FaultInjector",
    "fire",
    "fire_timed",
    "active_injectors",
]

Fault = Callable[[str, dict], None]


def _matches(match: Optional[dict], ctx: dict) -> bool:
    """A fault with a ``match`` dict fires only when every key-value pair
    is present in the hook's context (subset match)."""
    if not match:
        return True
    return all(ctx.get(k) == v for k, v in match.items())


class _CountedFault:
    """Shared bookkeeping: thread-safe firing budget + context matching."""

    def __init__(self, times: Optional[int], match: Optional[dict]) -> None:
        self.times = times
        self.match = match
        self.fired = 0
        self._lock = threading.Lock()

    def _should_fire(self, ctx: dict) -> bool:
        if not _matches(self.match, ctx):
            return False
        with self._lock:
            if self.times is not None and self.fired >= self.times:
                return False
            self.fired += 1
            return True


class RaiseFault(_CountedFault):
    """Raise an exception at a hook site (models a crashed worker).

    ``exc`` may be an exception instance, an exception class, or ``None``
    (raises :class:`~repro.robust.errors.InjectedFault`).  ``times``
    bounds how often the fault fires (default once — so a
    ``fallback_serial`` rerun of the same code path succeeds); ``match``
    restricts firing to hook contexts containing the given key-value
    pairs, e.g. ``match={"color": 2}``.
    """

    def __init__(self, exc=None, times: Optional[int] = 1,
                 match: Optional[dict] = None) -> None:
        super().__init__(times, match)
        self.exc = exc

    def __call__(self, site: str, ctx: dict) -> None:
        if not self._should_fire(ctx):
            return
        exc = self.exc
        if exc is None:
            raise InjectedFault(site)
        if isinstance(exc, type):
            raise exc(f"injected fault at site {site!r}")
        raise exc


class DelayFault(_CountedFault):
    """Sleep at a hook site (models a straggler block / slow worker).

    Containment requirement: a delayed block must slow the phase down,
    never hang it or change the result.
    """

    def __init__(self, seconds: float, times: Optional[int] = None,
                 match: Optional[dict] = None) -> None:
        super().__init__(times, match)
        self.seconds = float(seconds)

    def __call__(self, site: str, ctx: dict) -> None:
        if self._should_fire(ctx):
            time.sleep(self.seconds)


class HangFault(_CountedFault):
    """Stall at a hook site (models a worker that is alive but silent).

    Unlike :class:`DelayFault` — a bounded straggler the pipeline must
    merely *wait out* — a hang is a liveness failure the pipeline must
    *detect and kill*: ``seconds=None`` stalls essentially forever (the
    watchdog or test harness is expected to SIGKILL the hung process),
    while a bounded ``seconds`` models a stall long enough to trip a
    ``hang_timeout`` but short enough for an unsupervised test run to
    eventually finish if detection fails.

    The stall sleeps in 50 ms slices and re-raises nothing, matching
    the signature of a worker wedged in a syscall: no exception, no
    progress, heartbeat frozen.
    """

    #: "Indefinite" stall bound — long enough that only an external
    #: SIGKILL ends it in practice, finite so a failed watchdog cannot
    #: wedge a CI job forever.
    INDEFINITE_S = 3600.0

    def __init__(self, seconds: Optional[float] = None,
                 times: Optional[int] = 1,
                 match: Optional[dict] = None) -> None:
        super().__init__(times, match)
        self.seconds = self.INDEFINITE_S if seconds is None \
            else float(seconds)

    def __call__(self, site: str, ctx: dict) -> None:
        if not self._should_fire(ctx):
            return
        end = time.monotonic() + self.seconds
        while time.monotonic() < end:
            time.sleep(min(0.05, max(0.0, end - time.monotonic())))


# ---------------------------------------------------------------------------
# the injector
# ---------------------------------------------------------------------------
_ACTIVE: List["FaultInjector"] = []


def active_injectors() -> List["FaultInjector"]:
    """The currently activated injectors (normally empty)."""
    return list(_ACTIVE)


def fire(site: str, **ctx) -> None:
    """Hook-point entry: dispatch ``site`` to every active injector.

    Near-zero cost when no injector is active (one truthiness check on a
    module-level list), so production code may call it unconditionally.
    """
    if not _ACTIVE:
        return
    for injector in _ACTIVE:
        injector.fire(site, **ctx)


def fire_timed(site: str, **ctx) -> float:
    """Like :func:`fire`, but returns the seconds spent inside the
    dispatched faults (0.0 — without touching the clock — when no
    injector is active).

    Timing-sensitive hook points use this to keep injected chaos out of
    their own measurements: the executor subtracts the returned delay
    from ``thread_busy_s`` and books it under the
    ``faults.injected_delay_s`` counter instead, so chaos runs remain
    comparable to clean runs.  A fault that *raises* propagates before
    the elapsed time can be returned; that is fine — the run it aborts
    is discarded, not compared.
    """
    if not _ACTIVE:
        return 0.0
    t0 = time.perf_counter()
    for injector in _ACTIVE:
        injector.fire(site, **ctx)
    return time.perf_counter() - t0


class FaultInjector:
    """Seedable source of corruptions and registry of chaos faults.

    Use as a context manager to activate the registry::

        injector = FaultInjector(seed=7)
        injector.install("executor.task", RaiseFault(match={"color": 1}))
        with injector:
            op.power(x, k)        # the matching block task raises

    Data-corruption helpers never mutate their argument — they return a
    corrupted copy, drawing entry positions from the injector's seeded
    generator so every corruption is reproducible.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.rng = np.random.default_rng(seed)
        self._sites: Dict[str, List[Fault]] = {}

    # -- registry -------------------------------------------------------
    def install(self, site: str, fault: Fault) -> "FaultInjector":
        """Attach ``fault`` to ``site`` (chainable)."""
        self._sites.setdefault(site, []).append(fault)
        return self

    def clear(self, site: Optional[str] = None) -> None:
        """Remove the faults of one site, or all of them."""
        if site is None:
            self._sites.clear()
        else:
            self._sites.pop(site, None)

    def fire(self, site: str, **ctx) -> None:
        """Run every fault installed at ``site`` with the hook context."""
        for fault in self._sites.get(site, ()):
            fault(site, ctx)

    def activate(self) -> "FaultInjector":
        """Register this injector with the global :func:`fire` dispatch."""
        if self not in _ACTIVE:
            _ACTIVE.append(self)
        return self

    def deactivate(self) -> None:
        """Unregister from the global dispatch (idempotent)."""
        if self in _ACTIVE:
            _ACTIVE.remove(self)

    def __enter__(self) -> "FaultInjector":
        return self.activate()

    def __exit__(self, *exc) -> None:
        self.deactivate()

    # -- data corruption ------------------------------------------------
    def _pick(self, size: int, n: int) -> np.ndarray:
        if size == 0:
            return np.empty(0, dtype=np.int64)
        return self.rng.choice(size, size=min(n, size), replace=False)

    def corrupt_values(self, a, n: int = 1, kind: str = "nan"):
        """Corrupted copy of a CSR-like matrix: ``n`` stored values become
        NaN (``kind="nan"``), Inf (``"inf"``) or ``1e300`` (``"huge"``)."""
        payload = {"nan": np.nan, "inf": np.inf, "huge": 1e300}
        if kind not in payload:
            raise ValueError(f"unknown corruption kind {kind!r}")
        out = a.copy()
        out.data[self._pick(out.data.shape[0], n)] = payload[kind]
        return out

    def corrupt_indices(self, a, n: int = 1):
        """Corrupted copy of a CSR-like matrix: ``n`` column indices are
        pushed out of range (``>= n_cols``), the classic symptom of a
        truncated or mis-indexed file."""
        out = a.copy()
        pos = self._pick(out.indices.shape[0], n)
        out.indices[pos] = out.shape[1] + np.arange(pos.shape[0])
        return out

    def poison_vector(self, x: np.ndarray, n: int = 1,
                      kind: str = "nan") -> np.ndarray:
        """Poisoned copy of a dense vector/block: ``n`` entries become
        NaN or Inf."""
        payload = {"nan": np.nan, "inf": np.inf}
        if kind not in payload:
            raise ValueError(f"unknown poison kind {kind!r}")
        out = np.array(x, dtype=np.float64, copy=True)
        flat = out.reshape(-1)
        flat[self._pick(flat.shape[0], n)] = payload[kind]
        return out
