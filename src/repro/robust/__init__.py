"""Robustness layer: error taxonomy, structural validation, fault injection.

The FBMPK pipeline (split -> fused sweeps -> colour phases -> threads)
computes garbage silently when fed a corrupt matrix, a NaN iterate or a
crashed worker.  This package makes the failure modes *typed* and
*testable*:

* :mod:`~repro.robust.errors` — the exception taxonomy every layer maps
  its failures onto (and the CLI maps onto exit codes);
* :mod:`~repro.robust.validate` — structural validators for CSR/COO
  matrices, sweep groups and phase plans, plus the ``ensure_finite``
  guard surfaced as ``check_finite=`` through the operator and solvers;
* :mod:`~repro.robust.faults` — a deterministic, seedable fault injector
  (corrupt entries, poisoned vectors, raise-in-worker, delay-a-block,
  hang-a-worker) with a chaos-hook registry the executor, process pool
  and solve service honour;
* :mod:`~repro.robust.resilience` — time-bounding primitives: request
  :class:`~repro.robust.resilience.Deadline` propagation, retry with
  full-jitter exponential backoff, and the circuit breaker that sheds
  autotune searches under repeated failure.

See the "Failure modes & robustness" section of the README for the
policy matrix (what raises, what degrades, what falls back).
"""

from .errors import (
    DeadlineExceededError,
    InjectedFault,
    MatrixMarketError,
    NonFiniteError,
    PhaseExecutionError,
    ReproError,
    SolverBreakdownError,
    ValidationError,
)
from .faults import (
    DelayFault,
    FaultInjector,
    HangFault,
    RaiseFault,
    active_injectors,
    fire,
    fire_timed,
)
from .resilience import (
    BREAKER_STATES,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
)
from .validate import (
    Issue,
    ValidationReport,
    ensure_finite,
    validate_coo,
    validate_csr,
    validate_phases,
    validate_sweep_groups,
)

__all__ = [
    "ReproError",
    "ValidationError",
    "NonFiniteError",
    "MatrixMarketError",
    "PhaseExecutionError",
    "SolverBreakdownError",
    "DeadlineExceededError",
    "InjectedFault",
    "FaultInjector",
    "RaiseFault",
    "DelayFault",
    "HangFault",
    "Deadline",
    "RetryPolicy",
    "CircuitBreaker",
    "BREAKER_STATES",
    "fire",
    "fire_timed",
    "active_injectors",
    "Issue",
    "ValidationReport",
    "ensure_finite",
    "validate_csr",
    "validate_coo",
    "validate_sweep_groups",
    "validate_phases",
]
