"""Row partitioning and halo computation for distributed MPK.

The paper positions FBMPK against distributed *communication-avoiding*
Krylov methods (Section VI, refs [46]-[48]) and notes its own gains
compose with distribution (Section VII: "a distributed implementation
can directly benefit").  This package provides the distributed substrate
those statements refer to: a 1-D block row decomposition, the halo
(ghost) structure of each rank, and the k-hop halo expansion that
communication-avoiding MPK ships in one round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..sparse.csr import CSRMatrix

__all__ = ["RowPartition", "RankBlock", "partition_rows"]


@dataclass(frozen=True)
class RankBlock:
    """One rank's share of the matrix.

    ``rows`` is the contiguous owned range ``[row_start, row_stop)``;
    ``local`` holds those matrix rows (global column indices);
    ``halo_cols`` are the off-rank columns referenced by ``local`` — the
    entries the rank must receive before a local SpMV.
    """

    rank: int
    row_start: int
    row_stop: int
    local: CSRMatrix
    halo_cols: np.ndarray

    @property
    def n_local(self) -> int:
        """Owned row count."""
        return self.row_stop - self.row_start

    @property
    def halo_size(self) -> int:
        """Number of off-rank vector entries needed for one SpMV."""
        return int(self.halo_cols.shape[0])

    def owns(self, col: int) -> bool:
        """True when a global index is in the owned range."""
        return self.row_start <= col < self.row_stop


class RowPartition:
    """1-D block row decomposition of a square matrix over ``n_ranks``.

    The canonical distribution for sparse iterative solvers: rank ``r``
    owns a contiguous row slab and the matching slice of every vector.
    """

    def __init__(self, a: CSRMatrix, n_ranks: int) -> None:
        if a.shape[0] != a.shape[1]:
            raise ValueError("distribution requires a square matrix")
        if not (1 <= n_ranks <= a.n_rows):
            raise ValueError("need 1 <= n_ranks <= n_rows")
        self.a = a
        self.n = a.n_rows
        self.n_ranks = n_ranks
        bounds = np.linspace(0, self.n, n_ranks + 1).astype(np.int64)
        self.bounds = bounds
        self.blocks: List[RankBlock] = []
        for r in range(n_ranks):
            start, stop = int(bounds[r]), int(bounds[r + 1])
            local = a.row_slice(start, stop)
            cols = np.unique(local.indices)
            halo = cols[(cols < start) | (cols >= stop)]
            self.blocks.append(RankBlock(rank=r, row_start=start,
                                         row_stop=stop, local=local,
                                         halo_cols=halo))

    def owner_of(self, indices: np.ndarray) -> np.ndarray:
        """Rank owning each global row/vector index."""
        return np.searchsorted(self.bounds, np.asarray(indices),
                               side="right") - 1

    def halo_expansion(self, rank: int, hops: int) -> np.ndarray:
        """All global indices within ``hops`` matrix applications of the
        rank's owned rows (the PA1 ghost zone of communication-avoiding
        MPK): ``hops = 1`` gives owned + halo; each extra hop adds the
        columns referenced by the newly reached rows."""
        if hops < 0:
            raise ValueError("hops must be non-negative")
        block = self.blocks[rank]
        reach = np.arange(block.row_start, block.row_stop, dtype=np.int64)
        frontier = reach
        known = set(reach.tolist())
        for _ in range(hops):
            if frontier.size == 0:
                break
            sub = self.a.select_rows(frontier)
            cols = np.unique(sub.indices)
            new = np.array([c for c in cols.tolist() if c not in known],
                           dtype=np.int64)
            known.update(new.tolist())
            frontier = new
        return np.array(sorted(known), dtype=np.int64)


def partition_rows(a: CSRMatrix, n_ranks: int) -> RowPartition:
    """Convenience constructor for :class:`RowPartition`."""
    return RowPartition(a, n_ranks)
