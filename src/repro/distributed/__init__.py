"""Distributed-memory MPK substrate (Sections VI/VII context).

1-D row decomposition with halo accounting, an in-process SPMD simulator
that verifies distributed results against the serial kernels while
tallying communication, and the standard-vs-communication-avoiding MPK
comparison of the s-step literature the paper relates itself to.
"""

from .partition import RankBlock, RowPartition, partition_rows
from .spmd import (
    CommStats,
    distributed_mpk,
    distributed_mpk_ca,
    distributed_spmv,
)

__all__ = [
    "RankBlock",
    "RowPartition",
    "partition_rows",
    "CommStats",
    "distributed_mpk",
    "distributed_mpk_ca",
    "distributed_spmv",
]
