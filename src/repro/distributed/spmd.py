"""In-process SPMD execution of distributed MPK with communication
accounting.

This simulates what an MPI implementation would do — each rank computes
only from its owned vector slab plus explicitly "received" halo entries,
and every exchange is tallied (messages, doubles moved, rounds) — while
running inside one process so results can be verified bit-for-bit
against the serial kernels.  Two strategies:

``distributed_mpk``
    The standard approach: ``k`` rounds of (halo exchange, local SpMV).
    Communication: ``k`` rounds, ``k x`` the depth-1 halo volume.

``distributed_mpk_ca``
    Communication-avoiding (PA1 of Demmel et al., the paper's [46]):
    one exchange of the depth-``k`` ghost zone, then ``k`` purely local
    (partially redundant) SpMVs on shrinking reach sets.
    Communication: 1 round, the k-hop halo volume.

The crossover between the two is the s-step trade the paper's related
work discusses: CA wins when halos grow slowly (banded/stencil-like
structure) and latency matters; it loses when the k-hop neighbourhood
explodes (fast-expanding graphs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .partition import RowPartition

__all__ = ["CommStats", "distributed_spmv", "distributed_mpk",
           "distributed_mpk_ca"]


@dataclass
class CommStats:
    """Tally of simulated communication.

    ``rounds`` counts bulk-synchronous exchange phases; ``messages``
    point-to-point sends; ``volume_doubles`` total float64 payload;
    ``redundant_flops`` extra work CA performs in ghost zones.
    """

    rounds: int = 0
    messages: int = 0
    volume_doubles: int = 0
    redundant_flops: int = 0

    def time_seconds(self, latency_s: float = 2e-6,
                     bw_doubles_per_s: float = 1.25e9) -> float:
        """Alpha-beta communication time: per-round latency plus
        volume over bandwidth (defaults ~ a 10 GB/s, 2 us NIC)."""
        return self.rounds * latency_s + self.volume_doubles / bw_doubles_per_s


def _exchange(partition: RowPartition, x: np.ndarray, needed_per_rank,
              stats: CommStats) -> List[np.ndarray]:
    """Simulate one bulk exchange: every rank receives the entries in
    its ``needed`` index set from their owners.  Returns per-rank dense
    scratch copies of the global vector restricted to owned+received
    entries (entries a rank never received stay NaN, so accidental use
    is caught by the correctness checks)."""
    stats.rounds += 1
    views = []
    for rank, needed in enumerate(needed_per_rank):
        block = partition.blocks[rank]
        scratch = np.full(partition.n, np.nan)
        scratch[block.row_start:block.row_stop] = \
            x[block.row_start:block.row_stop]
        if needed.size:
            owners = partition.owner_of(needed)
            off_rank = owners != rank
            recv = needed[off_rank]
            scratch[recv] = x[recv]
            stats.messages += int(np.unique(owners[off_rank]).size)
            stats.volume_doubles += int(recv.size)
        views.append(scratch)
    return views


def distributed_spmv(partition: RowPartition, x: np.ndarray,
                     stats: CommStats | None = None) -> np.ndarray:
    """One distributed SpMV: depth-1 halo exchange + local products."""
    stats = CommStats() if stats is None else stats
    needed = [b.halo_cols for b in partition.blocks]
    views = _exchange(partition, np.asarray(x, dtype=np.float64), needed,
                      stats)
    y = np.empty(partition.n)
    for block, view in zip(partition.blocks, views):
        y[block.row_start:block.row_stop] = block.local.matvec(view)
    assert not np.isnan(y).any(), "rank consumed an entry it never received"
    return y


def distributed_mpk(partition: RowPartition, x: np.ndarray, k: int
                    ) -> tuple[np.ndarray, CommStats]:
    """Standard distributed MPK: ``k`` exchange+SpMV rounds."""
    if k < 0:
        raise ValueError("power k must be non-negative")
    stats = CommStats()
    y = np.asarray(x, dtype=np.float64).copy()
    for _ in range(k):
        y = distributed_spmv(partition, y, stats)
    return y, stats


def distributed_mpk_ca(partition: RowPartition, x: np.ndarray, k: int
                       ) -> tuple[np.ndarray, CommStats]:
    """Communication-avoiding distributed MPK (PA1).

    One exchange ships each rank the depth-``k`` ghost zone of ``x``;
    every rank then computes its k local powers on shrinking reach sets
    (power ``p`` is valid on indices within ``k - p`` hops of nothing
    unreached), duplicating work in the overlap — the classic
    latency-for-flops trade.
    """
    if k < 0:
        raise ValueError("power k must be non-negative")
    x = np.asarray(x, dtype=np.float64)
    stats = CommStats()
    if k == 0:
        return x.copy(), stats
    # One exchange of the k-hop ghost zones.
    reaches = [partition.halo_expansion(r, k)
               for r in range(partition.n_ranks)]
    views = _exchange(partition, x, reaches, stats)
    y = np.empty(partition.n)
    for rank, block in enumerate(partition.blocks):
        # Reach sets per power: rows computable at power p are those
        # whose dependencies stayed inside the received zone — i.e. the
        # (k - p)-hop expansion.
        zones = [partition.halo_expansion(rank, k - p)
                 for p in range(1, k)] + [
                     np.arange(block.row_start, block.row_stop,
                               dtype=np.int64)]
        cur = views[rank]
        for p, rows in enumerate(zones, start=1):
            sub = partition.a.select_rows(rows)
            vals = sub.matvec(np.nan_to_num(cur, nan=0.0))
            # Validity: every consumed entry must be real (non-NaN).
            consumed = np.unique(sub.indices)
            assert not np.isnan(cur[consumed]).any(), \
                "CA ghost zone too small"
            nxt = np.full(partition.n, np.nan)
            nxt[rows] = vals
            stats.redundant_flops += 2 * sub.nnz
            cur = nxt
        y[block.row_start:block.row_stop] = \
            cur[block.row_start:block.row_stop]
        # Subtract the non-redundant part: owned-row work would be done
        # anyway; only the ghost-zone rows are duplicated effort.
        own_sub = partition.a.row_slice(block.row_start, block.row_stop)
        stats.redundant_flops -= 2 * own_sub.nnz * k
    stats.redundant_flops = max(stats.redundant_flops, 0)
    assert not np.isnan(y).any()
    return y, stats
