"""Deterministic simulated multi-threaded execution.

Python on this host cannot time 64 OpenMP threads (GIL, single vCPU), so
scalability experiments (Fig 12) run on a *schedule simulator*: given the
phase structure of a kernel and a cost model for block work and barriers,
it computes the critical-path makespan of a ``T``-thread execution.  The
simulation is exact for the static schedules the paper describes ("the
number of blocks for each thread task are allocated in advance") and
deterministic, so results are reproducible and unit-testable.

Two cost providers are included: a simple bytes/bandwidth model matched
to a :class:`repro.machine.platform.Platform`, and an arbitrary
user-supplied callable for tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..machine.platform import Platform
from .scheduler import BlockTask, Phase, assign_tasks

__all__ = ["SimulatedRun", "simulate_phases", "block_cost_model"]

BlockCost = Callable[[BlockTask], float]


@dataclass
class SimulatedRun:
    """Outcome of a simulated parallel execution.

    ``phase_times`` are the per-phase makespans (max thread load plus the
    closing barrier); ``busy_time`` sums actual work, so
    ``efficiency = busy / (threads * total)`` measures load balance.
    """

    n_threads: int
    phase_times: List[float]
    busy_time: float

    @property
    def total_time(self) -> float:
        """End-to-end makespan."""
        return sum(self.phase_times)

    @property
    def efficiency(self) -> float:
        """Fraction of thread-seconds spent doing useful work."""
        denom = self.n_threads * self.total_time
        return self.busy_time / denom if denom else 1.0


def block_cost_model(platform: Platform, threads: int,
                     bytes_per_nnz: float = 12.0,
                     row_overhead_s: float = 2e-9) -> BlockCost:
    """Cost of one block on one core of ``platform`` when ``threads``
    cores are active: streaming its share of the matrix at the per-core
    bandwidth (bandwidth shrinks as cores contend) plus a small per-row
    loop overhead."""
    per_core_bw = platform.bandwidth_bytes_per_s(threads) / max(threads, 1)

    def cost(task: BlockTask) -> float:
        return task.nnz * bytes_per_nnz / per_core_bw \
            + task.rows * row_overhead_s

    return cost


def simulate_phases(
    phases: Sequence[Phase],
    n_threads: int,
    cost: BlockCost,
    barrier_s: float = 0.0,
    policy: str = "lpt",
) -> SimulatedRun:
    """Simulate the phase sequence on ``n_threads`` threads.

    Each phase: tasks are statically assigned, every thread runs its
    blocks back to back, the phase ends when the slowest thread finishes,
    then all threads cross a barrier of ``barrier_s`` seconds.
    """
    phase_times: List[float] = []
    busy = 0.0
    for phase in phases:
        bins = assign_tasks(phase.tasks, n_threads, policy=policy)
        loads = [sum(cost(t) for t in b) for b in bins]
        busy += sum(loads)
        phase_times.append(max(loads, default=0.0) + barrier_s)
    return SimulatedRun(n_threads=n_threads, phase_times=phase_times,
                        busy_time=busy)
