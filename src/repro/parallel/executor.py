"""Real shared-memory execution of colour phases (Section III-D/E).

Where :mod:`repro.parallel.simthread` *predicts* what a ``T``-thread
execution of a phase schedule would cost, this module actually *runs*
one: each phase's block tasks are dealt to a persistent
:class:`concurrent.futures.ThreadPoolExecutor` using the same static
assignment policies as the simulator (``round_robin``/``lpt``/
``dynamic``), every worker processes its blocks back to back, and the
phase ends with one barrier — exactly the "allocated in advance" OpenMP
structure of the paper's parallel FBMPK.

Python threads are real OS threads here: the NumPy gather/reduce kernels
that do the per-block work drop the GIL for their inner loops, so
same-colour blocks genuinely overlap on multicore hosts.  On a single
vCPU (or for tiny blocks, where interpreter overhead dominates) the
executor still runs the *true* concurrent schedule — which is what the
differential tests need in order to flush ordering and barrier bugs that
a simulator can never exhibit.

Observability is first class: :class:`ExecutionStats` records per-phase
wall time, per-thread busy time and the barrier count of a run, in the
same shape as :class:`repro.parallel.simthread.SimulatedRun`, so a real
run can be laid next to a ``simulate_phases`` prediction
(``benchmarks/bench_threaded_executor.py`` does exactly that).  When a
:class:`repro.obs.Telemetry` session is active, every executed phase
additionally emits an ``executor.phase`` span (attributes ``phase``,
``colour``, ``n_tasks``, ``nnz``, ``mode``) and the
``executor.barriers``/``executor.tasks``/``executor.phase_wall_s``
metrics; :class:`ExecutionStats` remains the derived per-run view.
Injected chaos delays are excluded from ``thread_busy_s`` and booked
under the ``faults.injected_delay_s`` counter instead.

Failure containment: a crashed block task aborts its phase with a typed
:class:`~repro.robust.errors.PhaseExecutionError` carrying the full
scheduling context (phase, colour, block row range, thread bin).  The
barrier *always* drains — every submitted bin is awaited before the
error propagates — and the pool is shut down before raising, so a failed
run can never leak worker threads or deadlock a barrier.  The
``on_failure="fallback_serial"`` policy additionally re-runs the whole
call serially from a caller-provided state snapshot, bit-identical to a
clean serial run.  Each task is preceded by the ``"executor.task"``
chaos hook of :mod:`repro.robust.faults`, which the fault-injection
suite uses to crash and delay workers on demand.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import wait as _futures_wait
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from .. import obs
from ..robust.errors import PhaseExecutionError
from ..robust.faults import fire_timed as _fire_fault_timed
from ..sparse.csr import CSRMatrix
from .dispatch import DescriptorBatch, ThreadCursor, default_claim_chunk
from .scheduler import BlockTask, Phase, assign_tasks

__all__ = [
    "PhaseRecord",
    "ExecutionStats",
    "PhaseExecutionError",
    "ThreadedPhaseExecutor",
    "check_phases",
    "spawn_daemon_pool",
]

TaskRunner = Callable[[BlockTask], None]

#: Batched-mode task runner: called with a *global descriptor index*
#: into the :class:`~repro.parallel.dispatch.DescriptorBatch`.
DescRunner = Callable[[int], None]


@dataclass(frozen=True)
class PhaseRecord:
    """Timing record of one executed phase (colour)."""

    color: int
    n_tasks: int
    nnz: int
    wall_s: float


@dataclass
class ExecutionStats:
    """Observed timings of a real threaded run.

    The counterpart of :class:`repro.parallel.simthread.SimulatedRun`:
    ``phase_wall_s`` are measured per-phase makespans (work plus the
    closing barrier), ``thread_busy_s[i]`` accumulates the time *bin*
    ``i`` of the static assignment spent inside block kernels (bins map
    one-to-one onto the simulator's threads; the pool may hand a bin to
    any free OS thread), and ``barriers`` counts phase-end
    synchronisations.
    """

    n_threads: int
    policy: str
    phases: List[PhaseRecord] = field(default_factory=list)
    thread_busy_s: List[float] = field(default_factory=list)
    barriers: int = 0
    #: Dispatch messages sent (batched path: one per phase per worker;
    #: legacy path leaves this at 0 — it predates the counter).
    enqueues: int = 0
    #: Cursor chunk claims performed by workers (batched path only).
    steals: int = 0

    def __post_init__(self) -> None:
        if not self.thread_busy_s:
            self.thread_busy_s = [0.0] * self.n_threads

    @property
    def phase_wall_s(self) -> List[float]:
        """Per-phase wall times, in execution order."""
        return [p.wall_s for p in self.phases]

    @property
    def total_wall_s(self) -> float:
        """End-to-end makespan of the recorded phases."""
        return sum(p.wall_s for p in self.phases)

    @property
    def busy_s(self) -> float:
        """Total thread-seconds spent inside block kernels."""
        return float(sum(self.thread_busy_s))

    @property
    def efficiency(self) -> float:
        """Busy thread-seconds over available thread-seconds (load
        balance measure, directly comparable to
        :attr:`SimulatedRun.efficiency`).  A run with no recorded wall
        time (empty phase list) has used no thread-seconds, so its
        efficiency is defined as 0.0 rather than risking a division by
        zero."""
        denom = self.n_threads * self.total_wall_s
        return self.busy_s / denom if denom else 0.0


def check_phases(tri: CSRMatrix, phases: Sequence[Phase]) -> bool:
    """Validate that ``phases`` can be executed with one barrier each.

    Requirements (the executability invariant of the block executor):

    * the tasks partition the rows of ``tri`` exactly (no overlap, no
      gap);
    * every stored entry ``(i, j)`` of ``tri`` points to a strictly
      earlier phase **or** to a row of the same task — cross-task
      dependencies inside one phase would race.

    ABMC colour phases satisfy this by construction (same-colour blocks
    share no entries; cross-colour entries point backwards); level/wave
    phases satisfy it with no intra-task dependencies at all.
    """
    n = tri.n_rows
    phase_of = np.full(n, -1, dtype=np.int64)
    task_of = np.full(n, -1, dtype=np.int64)
    tid = 0
    for pi, phase in enumerate(phases):
        for t in phase.tasks:
            if not (0 <= t.start <= t.stop <= n):
                return False
            if (phase_of[t.start:t.stop] != -1).any():
                return False  # overlapping tasks
            phase_of[t.start:t.stop] = pi
            task_of[t.start:t.stop] = tid
            tid += 1
    if (phase_of < 0).any():
        return False  # rows not covered
    rows = np.repeat(np.arange(n, dtype=np.int64), tri.row_nnz())
    cols = tri.indices
    ok = (phase_of[cols] < phase_of[rows]) | (task_of[cols] == task_of[rows])
    return bool(ok.all())


def spawn_daemon_pool(max_workers: int,
                      thread_name_prefix: str = "") -> ThreadPoolExecutor:
    """A :class:`ThreadPoolExecutor` whose workers are *daemon* threads.

    A pool that may be **abandoned** on a hang (``shutdown(wait=False)``
    with a worker wedged mid-task) must not use ordinary workers:
    ``threading._shutdown`` joins every non-daemon thread at interpreter
    exit, so the process would stall on the very hang the caller refused
    to wait for.  Worker daemon-ness is inherited from the thread that
    spawns them and the executor spawns lazily from whoever submits, so
    this pre-spawns all ``max_workers`` workers from a short-lived
    daemon thread: each seed task blocks until every worker exists
    (an idle worker would absorb later seeds and suppress spawning).
    """
    pool = ThreadPoolExecutor(max_workers=max_workers,
                              thread_name_prefix=thread_name_prefix)
    release = threading.Event()

    def _seed() -> None:
        for _ in range(max_workers):
            pool.submit(release.wait)

    spawner = threading.Thread(target=_seed, daemon=True,
                               name=f"{thread_name_prefix}-spawner")
    spawner.start()
    spawner.join()
    release.set()
    return pool


class _TaskFailure(Exception):
    """Internal wrapper identifying *which* task of a bin crashed."""

    def __init__(self, task: BlockTask, slot: int,
                 cause: BaseException) -> None:
        super().__init__(str(cause))
        self.task = task
        self.slot = slot
        self.cause = cause


class ThreadedPhaseExecutor:
    """Persistent thread pool running colour phases with one barrier each.

    The pool is created once and reused across sweeps and ``power``
    calls (worker spin-up is a preprocessing cost, like the paper's
    OpenMP runtime warm-up).  Within a phase, tasks are statically
    assigned to ``n_threads`` bins by :func:`assign_tasks`, every
    non-empty bin becomes one pool submission, and the phase returns
    only when all bins have finished — the barrier.

    A worker exception aborts the run at that barrier: the remaining
    bins are drained (no orphaned writers), the pool is shut down
    (``shutdown(wait=True)``, no leaked threads), and what happens next
    is the ``on_failure`` policy:

    ``"raise"`` (default)
        A :class:`PhaseExecutionError` with the failed task's phase,
        colour, row range and thread bin propagates; the original
        exception is chained as ``__cause__``.
    ``"fallback_serial"``
        If the caller provided a ``reset`` callback to
        :meth:`run_phases`, the state is rolled back and every phase is
        re-executed serially in the calling thread — bit-identical to a
        clean serial run (same task order, same kernels, no concurrency).
        Without ``reset`` the executor cannot roll back caller state and
        raises exactly like ``"raise"``.

    ``hang_timeout`` bounds each phase's barrier wait: if any bin has
    not finished ``hang_timeout`` seconds after the barrier was entered,
    the phase fails with a :class:`PhaseExecutionError` and the pool is
    *abandoned* (``shutdown(wait=False)``) rather than joined — Python
    threads cannot be killed, so a wedged worker is left to die with its
    daemon pool instead of wedging the caller too.  Callers on the
    fallback path must therefore stop sharing state with the abandoned
    pool (see ``FBMPKOperator.power``, which drops its sweep buffers so
    a zombie writer scribbles only on orphaned arrays).  Unlike the
    process executor's per-heartbeat timeout this bounds the *whole
    phase*, so choose it well above the slowest legitimate phase.
    """

    def __init__(self, n_threads: Optional[int] = None,
                 policy: str = "lpt",
                 on_failure: str = "raise",
                 hang_timeout: Optional[float] = None,
                 claim_chunk: Optional[int] = None) -> None:
        if n_threads is None:
            n_threads = os.cpu_count() or 1
        if n_threads < 1:
            raise ValueError("n_threads must be positive")
        if on_failure not in ("raise", "fallback_serial"):
            raise ValueError(f"unknown on_failure policy {on_failure!r}")
        if hang_timeout is not None and hang_timeout <= 0:
            raise ValueError("hang_timeout must be positive (or None)")
        if claim_chunk is not None and claim_chunk < 1:
            raise ValueError("claim_chunk must be positive (or None)")
        self.n_threads = int(n_threads)
        self.policy = policy
        self.on_failure = on_failure
        self.hang_timeout = None if hang_timeout is None \
            else float(hang_timeout)
        #: Blocks claimed per cursor round-trip in :meth:`run_batched`
        #: (None — the default — uses the per-phase heuristic of
        #: :func:`~repro.parallel.dispatch.default_claim_chunk`).
        self.claim_chunk = None if claim_chunk is None else int(claim_chunk)
        self._pool: Optional[ThreadPoolExecutor] = None

    # -- lifecycle ------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            if self.hang_timeout is not None:
                # Only a daemon pool can be abandoned on a hang without
                # the zombie worker stalling interpreter exit.
                self._pool = spawn_daemon_pool(
                    self.n_threads, thread_name_prefix="fbmpk")
            else:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.n_threads, thread_name_prefix="fbmpk")
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _abandon_pool(self) -> None:
        """Discard a pool believed to contain a hung worker without
        joining it (joining would inherit the hang).  Pending bins are
        cancelled; the hung thread keeps its references until it dies
        with the process.  The pool's threads are also de-registered
        from concurrent.futures' interpreter-exit join, which would
        otherwise stall process shutdown on the very hang we just
        refused to wait for."""
        if self._pool is None:
            return
        pool, self._pool = self._pool, None
        pool.shutdown(wait=False, cancel_futures=True)
        for t in getattr(pool, "_threads", ()):
            # Abandoned zombies are no longer *this executor's* workers:
            # rename them so thread dumps (and the test suites' no-leaked-
            # pool assertions) can tell them from a live pool.
            t.name = f"abandoned-{t.name}"
        try:
            from concurrent.futures import thread as _cf_thread
            for t in getattr(pool, "_threads", ()):
                _cf_thread._threads_queues.pop(t, None)
        except Exception:  # pragma: no cover - private-API drift
            pass

    def __enter__(self) -> "ThreadedPhaseExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution ------------------------------------------------------
    @staticmethod
    def _run_bin(tasks: Sequence[BlockTask], run_task: TaskRunner,
                 busy: List[float], slot: int, phase_index: int,
                 color: int) -> None:
        t0 = time.perf_counter()
        # Chaos-hook time is *not* work: injected delays are measured
        # separately, subtracted from the bin's busy time, and booked
        # under the faults.injected_delay_s counter, so fault-injection
        # runs stay comparable to clean runs.
        fault_s = 0.0
        try:
            for task in tasks:
                try:
                    fault_s += _fire_fault_timed(
                        "executor.task", phase_index=phase_index,
                        color=color, start=task.start,
                        stop=task.stop, thread=slot)
                    run_task(task)
                except BaseException as exc:
                    raise _TaskFailure(task, slot, exc) from exc
        finally:
            busy[slot] += time.perf_counter() - t0 - fault_s
            if fault_s:
                obs.add_counter("faults.injected_delay_s", fault_s,
                                unit="s")

    def run_serial(
        self,
        phases: Sequence[Phase],
        run_task: TaskRunner,
        stats: Optional[ExecutionStats] = None,
    ) -> ExecutionStats:
        """Execute ``phases`` serially in the calling thread, tasks in
        declared order — the executor's safe mode (no pool, no chaos
        hooks) and the reference the threaded path must be bit-identical
        to.  Busy time accrues to bin 0."""
        if stats is None:
            stats = ExecutionStats(n_threads=self.n_threads,
                                   policy=self.policy)
        for pi, phase in enumerate(phases):
            with obs.span("executor.phase", phase=pi, colour=phase.color,
                          n_tasks=len(phase.tasks), nnz=phase.total_nnz,
                          mode="serial"):
                t0 = time.perf_counter()
                for task in phase.tasks:
                    run_task(task)
                elapsed = time.perf_counter() - t0
            stats.thread_busy_s[0] += elapsed
            stats.barriers += 1
            stats.phases.append(PhaseRecord(
                color=phase.color, n_tasks=len(phase.tasks),
                nnz=phase.total_nnz, wall_s=elapsed))
            self._record_phase(phase, elapsed)
        return stats

    def run_phases(
        self,
        phases: Sequence[Phase],
        run_task: TaskRunner,
        stats: Optional[ExecutionStats] = None,
        reset: Optional[Callable[[], None]] = None,
    ) -> ExecutionStats:
        """Execute ``phases`` in order, calling ``run_task`` once per
        block, with a barrier after every phase.

        ``stats`` may be passed to accumulate several sweeps (e.g. the
        forward and backward stages of one ``power`` call) into a single
        record; a fresh one is created otherwise.

        ``reset`` is the rollback hook of the ``"fallback_serial"``
        failure policy: a zero-argument callable restoring the caller's
        state to what it was when this call started.  On a worker crash
        the executor drains the phase, shuts the pool down, rolls the
        stats and caller state back, and re-runs everything via
        :meth:`run_serial`.
        """
        if stats is None:
            stats = ExecutionStats(n_threads=self.n_threads,
                                   policy=self.policy)
        # Snapshot for the fallback path: stats must not double-count the
        # aborted attempt.
        snap = (len(stats.phases), stats.barriers,
                list(stats.thread_busy_s))
        pool = self._ensure_pool()
        for pi, phase in enumerate(phases):
            with obs.span("executor.phase", phase=pi, colour=phase.color,
                          n_tasks=len(phase.tasks), nnz=phase.total_nnz,
                          mode="threads"):
                t0 = time.perf_counter()
                bins = assign_tasks(phase.tasks, self.n_threads,
                                    policy=self.policy)
                futures = [
                    pool.submit(self._run_bin, b, run_task,
                                stats.thread_busy_s, i, pi, phase.color)
                    for i, b in enumerate(bins) if b
                ]
                # Barrier.  Always drain *every* submitted bin, even
                # after a failure — otherwise still-running workers
                # would write into caller state behind our back.  With a
                # hang_timeout the drain itself is bounded: a bin that
                # misses it marks the phase hung and the pool is
                # abandoned, not joined.
                failure: Optional[BaseException] = None
                hung = False
                done, not_done = _futures_wait(futures,
                                               timeout=self.hang_timeout)
                for f in done:
                    try:
                        f.result()
                    except BaseException as exc:
                        if failure is None:
                            failure = exc
                if not_done:
                    hung = True
                    obs.add_counter("executor.hung_phases")
                    if failure is None:
                        failure = PhaseExecutionError(
                            f"{len(not_done)} bin(s) still running "
                            f"{self.hang_timeout}s after the phase "
                            f"barrier was entered",
                            phase_index=pi, color=phase.color)
                elapsed = time.perf_counter() - t0
            if failure is not None:
                if hung:
                    self._abandon_pool()  # joining would hang us too
                else:
                    self.close()  # no leaked threads, ever
                obs.add_counter("executor.failed_phases")
                if self.on_failure == "fallback_serial" and reset is not None:
                    stats.phases[:] = stats.phases[:snap[0]]
                    stats.barriers = snap[1]
                    stats.thread_busy_s[:] = snap[2]
                    reset()
                    return self.run_serial(phases, run_task, stats)
                wrapped = self._wrap_failure(failure, pi, phase)
                if wrapped is failure:  # already typed (hang timeout)
                    raise wrapped
                raise wrapped from (
                    failure.cause if isinstance(failure, _TaskFailure)
                    else failure)
            stats.barriers += 1
            stats.phases.append(PhaseRecord(
                color=phase.color, n_tasks=len(phase.tasks),
                nnz=phase.total_nnz, wall_s=elapsed))
            self._record_phase(phase, elapsed)
        return stats

    # -- batched descriptor execution -----------------------------------
    @staticmethod
    def _run_claim_loop(batch: DescriptorBatch, cursor: ThreadCursor,
                        hi: int, chunk: int, run_desc: DescRunner,
                        busy: List[float], steals: List[int], slot: int,
                        phase_index: int, color: int) -> None:
        """One worker's share of a batched phase: claim descriptor
        chunks from the shared cursor until the phase is drained.  A
        worker that claims nothing (more workers than blocks) returns
        immediately — its future is the barrier contribution."""
        t0 = time.perf_counter()
        fault_s = 0.0
        try:
            while True:
                lo, end = cursor.claim(hi, chunk)
                if lo >= end:
                    break
                steals[slot] += 1
                for g in range(lo, end):
                    start = int(batch.starts[g])
                    stop = int(batch.stops[g])
                    try:
                        fault_s += _fire_fault_timed(
                            "executor.task", phase_index=phase_index,
                            color=color, start=start, stop=stop,
                            thread=slot)
                        run_desc(g)
                    except BaseException as exc:
                        task = BlockTask(start, stop, int(batch.nnz[g]))
                        raise _TaskFailure(task, slot, exc) from exc
        finally:
            busy[slot] += time.perf_counter() - t0 - fault_s
            if fault_s:
                obs.add_counter("faults.injected_delay_s", fault_s,
                                unit="s")

    def run_serial_batch(self, batch: DescriptorBatch,
                         run_desc: DescRunner,
                         stats: Optional[ExecutionStats] = None
                         ) -> ExecutionStats:
        """Execute a descriptor batch in the calling thread, descriptors
        in batch order — the reference :meth:`run_batched` must be
        bit-identical to, and its ``fallback_serial`` target.  Busy time
        accrues to bin 0."""
        if stats is None:
            stats = ExecutionStats(n_threads=self.n_threads,
                                   policy=self.policy)
        for pi in range(batch.n_phases):
            lo, hi = batch.phase_range(pi)
            color = batch.phase_color(pi)
            nnz = batch.phase_nnz(pi)
            with obs.span("executor.phase", phase=pi, colour=color,
                          n_tasks=hi - lo, nnz=nnz, mode="serial"):
                t0 = time.perf_counter()
                for g in range(lo, hi):
                    run_desc(g)
                elapsed = time.perf_counter() - t0
            stats.thread_busy_s[0] += elapsed
            stats.barriers += 1
            stats.phases.append(PhaseRecord(
                color=color, n_tasks=hi - lo, nnz=nnz, wall_s=elapsed))
            self._record_batch_phase(hi - lo, nnz, elapsed)
        return stats

    def run_batched(
        self,
        batch: DescriptorBatch,
        run_desc: DescRunner,
        stats: Optional[ExecutionStats] = None,
        reset: Optional[Callable[[], None]] = None,
        claim_chunk: Optional[int] = None,
    ) -> ExecutionStats:
        """Execute a :class:`DescriptorBatch` with one pool submission
        per worker per phase and a barrier after every phase.

        The batched counterpart of :meth:`run_phases`: instead of
        statically binning tasks at dispatch time, every worker claims
        descriptor chunks from a shared :class:`ThreadCursor`, so load
        balance is dynamic and dispatch cost is ``O(n_workers)`` per
        phase regardless of block count.  ``run_desc`` is called once
        per global descriptor index.  Failure semantics (drain, pool
        shutdown, ``fallback_serial`` with ``reset``, hang timeout with
        pool abandonment) match :meth:`run_phases`; the serial rerun
        uses :meth:`run_serial_batch`, bit-identical because per-colour
        block results are order-independent.
        """
        if stats is None:
            stats = ExecutionStats(n_threads=self.n_threads,
                                   policy=self.policy)
        snap = (len(stats.phases), stats.barriers,
                list(stats.thread_busy_s), stats.enqueues, stats.steals)
        pool = self._ensure_pool()
        if claim_chunk is None:
            claim_chunk = self.claim_chunk
        cursor = ThreadCursor()
        steals = [0] * self.n_threads
        for pi in range(batch.n_phases):
            lo, hi = batch.phase_range(pi)
            color = batch.phase_color(pi)
            nnz = batch.phase_nnz(pi)
            with obs.span("executor.phase", phase=pi, colour=color,
                          n_tasks=hi - lo, nnz=nnz, mode="threads"):
                t0 = time.perf_counter()
                failure: Optional[BaseException] = None
                hung = False
                if hi > lo:
                    chunk = claim_chunk if claim_chunk is not None \
                        else default_claim_chunk(hi - lo, self.n_threads)
                    cursor.reset(lo)
                    futures = [
                        pool.submit(self._run_claim_loop, batch, cursor,
                                    hi, chunk, run_desc,
                                    stats.thread_busy_s, steals, i, pi,
                                    color)
                        for i in range(self.n_threads)
                    ]
                    stats.enqueues += self.n_threads
                    obs.add_counter("executor.enqueues", self.n_threads)
                    done, not_done = _futures_wait(
                        futures, timeout=self.hang_timeout)
                    for f in done:
                        try:
                            f.result()
                        except BaseException as exc:
                            if failure is None:
                                failure = exc
                    if not_done:
                        hung = True
                        obs.add_counter("executor.hung_phases")
                        if failure is None:
                            failure = PhaseExecutionError(
                                f"{len(not_done)} worker(s) still "
                                f"running {self.hang_timeout}s after "
                                f"the phase barrier was entered",
                                phase_index=pi, color=color)
                elapsed = time.perf_counter() - t0
            if failure is not None:
                if hung:
                    self._abandon_pool()
                else:
                    self.close()
                obs.add_counter("executor.failed_phases")
                if self.on_failure == "fallback_serial" \
                        and reset is not None:
                    stats.phases[:] = stats.phases[:snap[0]]
                    stats.barriers = snap[1]
                    stats.thread_busy_s[:] = snap[2]
                    stats.enqueues = snap[3]
                    stats.steals = snap[4]
                    reset()
                    return self.run_serial_batch(batch, run_desc, stats)
                wrapped = self._wrap_failure(
                    failure, pi, Phase(color=color, tasks=[]))
                if wrapped is failure:
                    raise wrapped
                raise wrapped from (
                    failure.cause if isinstance(failure, _TaskFailure)
                    else failure)
            stats.barriers += 1
            stats.phases.append(PhaseRecord(
                color=color, n_tasks=hi - lo, nnz=nnz, wall_s=elapsed))
            self._record_batch_phase(hi - lo, nnz, elapsed)
        phase_steals = sum(steals)
        stats.steals += phase_steals
        if phase_steals:
            obs.add_counter("executor.steal_count", phase_steals)
        return stats

    @staticmethod
    def _record_batch_phase(n_tasks: int, nnz: int, wall_s: float) -> None:
        if obs.current() is None:
            return
        obs.add_counter("executor.barriers")
        obs.add_counter("executor.tasks", n_tasks)
        obs.add_counter("executor.phase_nnz", nnz)
        obs.observe("executor.phase_wall_s", wall_s, unit="s")

    @staticmethod
    def _record_phase(phase: Phase, wall_s: float) -> None:
        """Publish one executed phase to the active telemetry session
        (counters + wall-time histogram); no-op when telemetry is off."""
        if obs.current() is None:
            return
        obs.add_counter("executor.barriers")
        obs.add_counter("executor.tasks", len(phase.tasks))
        obs.add_counter("executor.phase_nnz", phase.total_nnz)
        obs.observe("executor.phase_wall_s", wall_s, unit="s")

    @staticmethod
    def _wrap_failure(failure: BaseException, phase_index: int,
                      phase: Phase) -> PhaseExecutionError:
        """Build the typed, context-carrying error for a crashed phase."""
        if isinstance(failure, PhaseExecutionError):
            return failure
        if isinstance(failure, _TaskFailure):
            return PhaseExecutionError(
                f"block task crashed: {failure.cause!r}",
                phase_index=phase_index, color=phase.color,
                block=(failure.task.start, failure.task.stop),
                thread=failure.slot)
        return PhaseExecutionError(
            f"phase execution failed: {failure!r}",
            phase_index=phase_index, color=phase.color)
