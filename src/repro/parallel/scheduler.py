"""Colour-phase scheduling of ABMC blocks onto threads.

Turns an :class:`repro.reorder.abmc.ABMCOrdering` into the phase/task
structure the paper's parallel FBMPK executes: one *phase* per colour per
sweep, each phase holding the colour's blocks as independent tasks;
threads receive blocks by static assignment "allocated in advance"
(Section III-E), either round-robin or nnz-balanced (LPT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Sequence

import numpy as np

from ..reorder.abmc import ABMCOrdering
from ..sparse.csr import CSRMatrix

__all__ = ["BlockTask", "Phase", "build_phases", "phases_from_groups",
           "assign_tasks"]


@dataclass(frozen=True)
class BlockTask:
    """One block of rows processed by one thread without interruption."""

    start: int
    stop: int
    nnz: int

    @property
    def rows(self) -> int:
        """Number of rows in the block."""
        return self.stop - self.start


@dataclass(frozen=True)
class Phase:
    """All same-colour blocks — mutually independent, barrier at the end."""

    color: int
    tasks: List[BlockTask]

    @property
    def total_nnz(self) -> int:
        """Work volume of the phase."""
        return sum(t.nnz for t in self.tasks)


def build_phases(ordering: ABMCOrdering, tri: CSRMatrix) -> List[Phase]:
    """Phases for one sweep over triangle ``tri`` (rows in the *reordered*
    numbering), in colour order.  The backward sweep uses the same phases
    reversed."""
    if tri.n_rows != ordering.n:
        raise ValueError("triangle dimension does not match the ordering")
    phases: List[Phase] = []
    for color in range(ordering.n_colors):
        tasks = [
            BlockTask(start, stop,
                      int(tri.indptr[stop] - tri.indptr[start]))
            for start, stop in ordering.blocks_of_color(color)
        ]
        phases.append(Phase(color=color, tasks=tasks))
    return phases


def phases_from_groups(
    tri: CSRMatrix, groups: Sequence[np.ndarray]
) -> List[Phase]:
    """Phases for one sweep from generic sweep groups (levels or waves).

    Each group becomes one phase; its tasks are the maximal runs of
    consecutive row indices, so contiguous level sets turn into few fat
    blocks while scattered ones degrade gracefully to thin tasks.  Valid
    whenever the groups satisfy the sweep-group invariant (every
    dependency in a strictly earlier group): rows inside one group are
    then mutually independent, so any split into tasks is race-free.
    This is the executor's fallback when no ABMC block structure is
    available (``strategy="levels"``, or operators rebuilt from disk).
    """
    phases: List[Phase] = []
    for gi, rows in enumerate(groups):
        rows = np.sort(np.asarray(rows, dtype=np.int64))
        tasks: List[BlockTask] = []
        if rows.size:
            breaks = np.nonzero(np.diff(rows) != 1)[0] + 1
            for run in np.split(rows, breaks):
                start, stop = int(run[0]), int(run[-1]) + 1
                tasks.append(BlockTask(
                    start, stop,
                    int(tri.indptr[stop] - tri.indptr[start])))
        phases.append(Phase(color=gi, tasks=tasks))
    return phases


def assign_tasks(
    tasks: Sequence[BlockTask],
    n_threads: int,
    policy: Literal["round_robin", "lpt", "dynamic"] = "lpt",
) -> List[List[BlockTask]]:
    """Assign a phase's tasks to threads.

    ``"round_robin"`` deals blocks out in order; ``"lpt"`` (longest
    processing time first) greedily gives each block to the least loaded
    thread, the classic static makespan heuristic; ``"dynamic"`` models
    a work queue — tasks are taken in their original order by whichever
    thread is least loaded (online list scheduling), the behaviour of an
    OpenMP ``schedule(dynamic)`` loop.
    """
    if n_threads < 1:
        raise ValueError("n_threads must be positive")
    bins: List[List[BlockTask]] = [[] for _ in range(n_threads)]
    if policy == "round_robin":
        for i, t in enumerate(tasks):
            bins[i % n_threads].append(t)
    elif policy in ("lpt", "dynamic"):
        ordered = (sorted(tasks, key=lambda t: -t.nnz)
                   if policy == "lpt" else list(tasks))
        loads = np.zeros(n_threads, dtype=np.int64)
        for t in ordered:
            target = int(np.argmin(loads))
            bins[target].append(t)
            loads[target] += max(t.nnz, 1)
    else:
        raise ValueError(f"unknown policy {policy!r}")
    return bins
