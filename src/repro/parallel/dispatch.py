"""Batched descriptor dispatch for the colour-phase executors.

The legacy dispatch path shipped one message per block bin per phase
(processes) or one pool submission per bin per phase (threads); with
small blocks the per-message cost dominated the phase and the process
backend gave a third of FBMPK's memory-traffic win back to the runtime.
This module packs the whole phase schedule once, at plan time, into
contiguous numpy **descriptor arrays** — ``starts``/``stops``/``nnz``
per block plus a CSR-style ``phase_ptr`` — so a sweep performs *one
enqueue per phase per worker* (a ``(phase_idx, lo, hi)`` triple) and
workers claim blocks from the shared arrays via a chunked work-stealing
cursor.

Both executors consume the same :class:`DescriptorBatch`:

* :class:`~repro.parallel.executor.ThreadedPhaseExecutor` drives a
  :class:`ThreadCursor` (a plain lock-guarded counter in process
  memory);
* :class:`~repro.parallel.procexec.ProcessPhaseExecutor` drives a
  :class:`SharedCursor`/:class:`CompletionBarrier` pair over an
  arena-resident int64 control slab guarded by a ``multiprocessing``
  lock (a futex-backed POSIX semaphore — the portable CPython stand-in
  for a CAS loop; the critical section is a single fetch-and-add).

Bit-identity is preserved by construction: descriptors are only ever
reordered *within* a phase (colour), and same-colour blocks touch
disjoint vector elements, so per-colour block results are
order-independent — any claim order yields the serial bits.  The
per-phase descriptor order itself mirrors the legacy assignment
policies (``lpt`` consumes blocks largest-first, ``round_robin`` and
``dynamic`` in declared order), so the batch is a permutation of the
legacy per-block dispatch order within each colour.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .scheduler import BlockTask, Phase

__all__ = [
    "CTRL_CURSOR",
    "CTRL_REMAINING",
    "CTRL_EPOCH",
    "CTRL_ERRORS",
    "CTRL_SLOTS",
    "DescriptorBatch",
    "ThreadCursor",
    "SharedCursor",
    "CompletionBarrier",
    "default_claim_chunk",
    "ordered_tasks",
    "pin_worker",
]

#: Slot layout of the arena-resident control slab (int64 array).
CTRL_CURSOR = 0      #: next unclaimed global descriptor index
CTRL_REMAINING = 1   #: workers yet to arrive at the phase barrier
CTRL_EPOCH = 2       #: monotonically increasing phase epoch (debugging)
CTRL_ERRORS = 3      #: error messages workers have queued this phase
CTRL_SLOTS = 4


def ordered_tasks(tasks: Sequence[BlockTask],
                  policy: str) -> List[BlockTask]:
    """A phase's tasks in the order the batched dispatcher exposes them.

    Mirrors the consumption order of the legacy
    :func:`~repro.parallel.scheduler.assign_tasks` policies: ``lpt``
    claims the largest blocks first (stable sort, so equal-nnz blocks
    keep their declared order), ``round_robin`` and ``dynamic`` claim in
    declared order.  Always a permutation of ``tasks``.
    """
    if policy == "lpt":
        return sorted(tasks, key=lambda t: -t.nnz)
    if policy in ("round_robin", "dynamic"):
        return list(tasks)
    raise ValueError(f"unknown policy {policy!r}")


@dataclass(frozen=True)
class DescriptorBatch:
    """The whole phase schedule as contiguous descriptor arrays.

    ``starts``/``stops``/``nnz`` hold one entry per block, grouped by
    phase; ``phase_ptr`` is the CSR-style offset array (phase ``p``
    owns global descriptor indices ``[phase_ptr[p], phase_ptr[p+1])``)
    and ``colors[p]`` the phase's colour.  ``starts``/``stops`` and
    ``phase_ptr`` are all a worker needs to execute, so only those two
    cross the process boundary (as shared-memory segments).
    """

    starts: np.ndarray
    stops: np.ndarray
    nnz: np.ndarray
    phase_ptr: np.ndarray
    colors: np.ndarray
    policy: str = "lpt"
    _phases: Tuple[Phase, ...] = field(default=(), repr=False)
    #: Optional per-descriptor update-kind tags (int64, aligned with
    #: ``starts``).  Colour-phase sweeps leave this ``None`` (the sweep
    #: name fixes the kernel); the levels-blocked schedule mixes powers
    #: inside one phase, so each descriptor carries its own op.
    ops: Optional[np.ndarray] = None

    @classmethod
    def from_phases(cls, phases: Sequence[Phase],
                    policy: str = "lpt") -> "DescriptorBatch":
        """Pack ``phases`` (the legacy schedule) into descriptor arrays,
        ordering each phase's blocks per :func:`ordered_tasks`."""
        starts: List[int] = []
        stops: List[int] = []
        nnzs: List[int] = []
        ptr = [0]
        colors = []
        for phase in phases:
            for t in ordered_tasks(phase.tasks, policy):
                starts.append(t.start)
                stops.append(t.stop)
                nnzs.append(t.nnz)
            ptr.append(len(starts))
            colors.append(phase.color)
        return cls(
            starts=np.asarray(starts, dtype=np.int64),
            stops=np.asarray(stops, dtype=np.int64),
            nnz=np.asarray(nnzs, dtype=np.int64),
            phase_ptr=np.asarray(ptr, dtype=np.int64),
            colors=np.asarray(colors, dtype=np.int64),
            policy=policy,
            _phases=tuple(phases),
        )

    @property
    def n_phases(self) -> int:
        return len(self.phase_ptr) - 1

    @property
    def n_blocks(self) -> int:
        return int(self.phase_ptr[-1])

    def phase_range(self, pi: int) -> Tuple[int, int]:
        """Global descriptor index range ``[lo, hi)`` of phase ``pi``."""
        return int(self.phase_ptr[pi]), int(self.phase_ptr[pi + 1])

    def phase_nnz(self, pi: int) -> int:
        lo, hi = self.phase_range(pi)
        return int(self.nnz[lo:hi].sum())

    def phase_color(self, pi: int) -> int:
        return int(self.colors[pi])

    @property
    def phases(self) -> Tuple[Phase, ...]:
        """The legacy :class:`Phase` list this batch was built from
        (kept for the serial-fallback path)."""
        return self._phases

    @classmethod
    def from_op_phases(cls, phases: Sequence[Sequence[Tuple[int, int,
                                                            int, int]]],
                       policy: str = "lpt") -> "DescriptorBatch":
        """Pack per-phase ``(start, stop, nnz, op)`` descriptor lists
        (the levels-blocked schedule of
        :func:`repro.reorder.levels_blocked.blocked_descriptors`) into a
        batch whose descriptors carry their update kind in :attr:`ops`.
        Phase index doubles as the colour; within a phase descriptors
        are exposed per the same :func:`ordered_tasks` policies."""
        starts: List[int] = []
        stops: List[int] = []
        nnzs: List[int] = []
        op_tags: List[int] = []
        ptr = [0]
        colors = []
        for pi, descs in enumerate(phases):
            if policy == "lpt":
                descs = sorted(descs, key=lambda t: -t[2])
            elif policy not in ("round_robin", "dynamic"):
                raise ValueError(f"unknown policy {policy!r}")
            for start, stop, nnz, op in descs:
                starts.append(start)
                stops.append(stop)
                nnzs.append(nnz)
                op_tags.append(op)
            ptr.append(len(starts))
            colors.append(pi)
        return cls(
            starts=np.asarray(starts, dtype=np.int64),
            stops=np.asarray(stops, dtype=np.int64),
            nnz=np.asarray(nnzs, dtype=np.int64),
            phase_ptr=np.asarray(ptr, dtype=np.int64),
            colors=np.asarray(colors, dtype=np.int64),
            policy=policy,
            ops=np.asarray(op_tags, dtype=np.int64),
        )

    def pack_rows(self) -> np.ndarray:
        """The int64 plan table shipped to workers: ``(2, n_blocks)``
        (row 0 = starts, row 1 = stops), or ``(3, n_blocks)`` with the
        per-descriptor :attr:`ops` tags as row 2 when present."""
        if self.ops is not None:
            return np.vstack([self.starts, self.stops, self.ops])
        return np.vstack([self.starts, self.stops])


def default_claim_chunk(n_blocks: int, n_workers: int) -> int:
    """Blocks claimed per cursor round-trip when the caller does not
    pin a chunk size: ``n_blocks / (4 * n_workers)``, floored at 1 —
    every worker gets ~4 steals per phase, enough to rebalance
    stragglers while keeping lock traffic negligible."""
    if n_workers < 1:
        raise ValueError("n_workers must be positive")
    return max(1, n_blocks // (4 * n_workers))


class ThreadCursor:
    """In-process chunked-claim cursor (the threads-backend variant)."""

    __slots__ = ("_lock", "_next")

    def __init__(self, lo: int = 0) -> None:
        self._lock = threading.Lock()
        self._next = int(lo)

    def reset(self, lo: int) -> None:
        with self._lock:
            self._next = int(lo)

    def claim(self, hi: int, chunk: int) -> Tuple[int, int]:
        """Claim up to ``chunk`` descriptors below ``hi``; returns the
        claimed ``[lo, hi)`` range (empty when the cursor is drained)."""
        with self._lock:
            lo = self._next
            if lo >= hi:
                return hi, hi
            new = min(lo + int(chunk), hi)
            self._next = new
        return lo, new


class SharedCursor:
    """Chunked-claim cursor over an arena-resident int64 control slab.

    The counter lives in shared memory (``ctrl[CTRL_CURSOR]``); mutual
    exclusion comes from a ``multiprocessing`` lock created by the pool
    owner and inherited by every worker at spawn.  The critical section
    is a single bounded fetch-and-add, so contention stays at the cost
    of one futex round-trip per *chunk*, not per block.
    """

    __slots__ = ("ctrl", "lock")

    def __init__(self, ctrl: np.ndarray, lock) -> None:
        self.ctrl = ctrl
        self.lock = lock

    def reset(self, lo: int) -> None:
        """Point the cursor at ``lo`` (dispatcher-side, between phases,
        while every worker is parked on its queue)."""
        self.ctrl[CTRL_CURSOR] = int(lo)

    def claim(self, hi: int, chunk: int) -> Tuple[int, int]:
        """Claim up to ``chunk`` descriptors below ``hi``; returns the
        claimed ``[lo, hi)`` range (empty when the phase is drained)."""
        with self.lock:
            lo = int(self.ctrl[CTRL_CURSOR])
            if lo >= hi:
                return hi, hi
            new = min(lo + int(chunk), hi)
            self.ctrl[CTRL_CURSOR] = new
        return lo, new


class CompletionBarrier:
    """Shared-memory atomic completion counter + one futex-style event.

    Replaces per-block acknowledgement round-trips: the dispatcher arms
    the barrier with the number of dispatched workers, every worker
    calls :meth:`arrive` exactly once per phase (in a ``finally``, so
    an erroring worker still closes the barrier), and the last arrival
    flips the event the dispatcher is waiting on.  A worker that dies
    *without* arriving leaves ``remaining > 0``; the dispatcher's
    bounded wait loop detects it (liveness/heartbeat scan) and arrives
    on the dead worker's behalf, so the barrier still closes and the
    ordinary failure path takes over.

    Every lock acquisition is bounded: a worker SIGKILL'd inside the
    critical section poisons the lock, and an unbounded ``acquire``
    would convert that into a dispatcher hang.  :meth:`arrive` returns
    False on a poisoned lock so callers can escalate to pool teardown
    (which replaces the lock) instead of blocking.
    """

    __slots__ = ("ctrl", "lock", "event")

    def __init__(self, ctrl: np.ndarray, lock, event) -> None:
        self.ctrl = ctrl
        self.lock = lock
        self.event = event

    def arm(self, n: int) -> None:
        """Dispatcher-side: expect ``n`` arrivals, event cleared."""
        self.ctrl[CTRL_REMAINING] = int(n)
        self.event.clear()

    def arrive(self, timeout: Optional[float] = None) -> bool:
        """One arrival: decrement the counter, last one out sets the
        event.  Returns False if the lock could not be acquired within
        ``timeout`` (poisoned by a worker killed mid-claim)."""
        if timeout is None:
            acquired = self.lock.acquire()
        else:
            acquired = self.lock.acquire(timeout=timeout)
        if not acquired:
            return False
        try:
            self.ctrl[CTRL_REMAINING] -= 1
            remaining = int(self.ctrl[CTRL_REMAINING])
        finally:
            self.lock.release()
        if remaining <= 0:
            self.event.set()
        return True

    def remaining(self) -> int:
        """Dirty read of the arrival counter (scan/diagnostics only)."""
        return int(self.ctrl[CTRL_REMAINING])

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self.event.wait(timeout)


def pin_worker(slot: int, enable: Optional[bool] = None) -> Optional[int]:
    """Best-effort deterministic CPU pinning for worker ``slot``.

    Pins the calling process to one CPU of its inherited affinity mask,
    chosen round-robin by slot, so repeated pool spawns land workers on
    the same cores (cache locality across sweeps).  ``enable=None``
    (auto) pins only when at least two CPUs are available — pinning
    everything onto a single CPU would serialise the pool.  Gracefully
    no-ops (returns None) on platforms without ``sched_setaffinity`` or
    when the syscall is denied.
    """
    if enable is False:
        return None
    try:
        cpus = sorted(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return None
    if enable is None and len(cpus) < 2:
        return None
    if not cpus:
        return None
    cpu = cpus[slot % len(cpus)]
    try:
        os.sched_setaffinity(0, {cpu})
    except (AttributeError, OSError):
        return None
    return cpu
