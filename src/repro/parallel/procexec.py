"""Zero-copy shared-memory process-parallel backend for FBMPK colour phases.

The threaded executor (:mod:`repro.parallel.executor`) runs the paper's
colour-phase schedule on real OS threads, but CPython only lets those
threads overlap where the NumPy kernels drop the GIL — for small blocks
the interpreter serialises the schedule.  This module provides the
backend that sidesteps the GIL entirely: a persistent pool of worker
*processes* over :mod:`multiprocessing.shared_memory`.

The design is zero-copy by construction.  At pool construction the CSR
triangles (``indptr``/``indices``/``data`` of L and U), the diagonal,
the BtB interleaved iterate buffer and the sweep temporary are placed in
named shared-memory segments; every worker maps the same segments and
builds plain numpy views over them.  Dispatching a phase therefore ships
only tiny descriptors — ``(sweep, phase, colour, block row ranges,
slot)`` tuples over a queue — never array payloads, exactly as the
distributed matrix-power kernels of Alappat et al. ship halo metadata
rather than matrix data.

Execution semantics are identical to the threaded backend: tasks are
statically assigned to ``n_workers`` bins by
:func:`~repro.parallel.scheduler.assign_tasks` (``round_robin``/
``lpt``/``dynamic``), each non-empty bin is one message to its worker,
and the phase returns only when every dispatched bin has acknowledged —
the barrier.  Per-row arithmetic in the workers is the same
``reduce_rows`` reduction the serial and threaded paths use, so results
are **bit-identical** to a serial run.

Failure containment matches :class:`ThreadedPhaseExecutor` and extends
it with dead-worker *and hung-worker* detection: a worker exception
crosses the process boundary as a pickled cause chained into a typed
:class:`~repro.robust.errors.PhaseExecutionError`; a SIGKILL'd worker is
detected by liveness polling while the barrier drains; and — when a
``hang_timeout`` is set — a worker that is alive but silent (SIGSTOP'd,
wedged in a syscall, spinning) is caught by a heartbeat watchdog.
Workers stamp a shared-memory heartbeat slab before every block task;
the dispatcher scans the slab while the barrier drains and SIGKILLs any
pending worker whose heartbeat has not moved within ``hang_timeout``,
converting the hang into the ordinary dead-worker failure.  Either way
every still-live bin is awaited, the pool is torn down (a later call
respawns it), and ``on_failure="fallback_serial"`` re-runs the phases in
the calling process from a caller-provided ``reset`` snapshot.  The
``"executor.task"`` chaos hook fires in the parent at dispatch time and
``"procexec.heartbeat"`` fires in the worker per block (inherited across
``fork``), so the fault-injection suite can stall a worker without
stalling the parent.

Shared-memory lifecycle is leak-proof: segments are unlinked by
``close()``/context-manager exit, by a ``weakref.finalize`` finaliser
(which doubles as an ``atexit`` hook), and unlinking is decoupled from
buffer release so even live outstanding views cannot keep a name in
``/dev/shm``.  ``tests/parallel/test_process_executor.py`` asserts no
residue survives the crash paths.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as _queue
import secrets
import time
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..obs.spanring import (
    KIND_EXEC,
    KIND_WAIT,
    DEFAULT_RING_CAPACITY,
    RingReader,
    RingWriter,
    ring_shapes,
)
from ..robust.errors import PhaseExecutionError
from ..robust.faults import fire as _fire_fault
from ..robust.faults import fire_timed as _fire_fault_timed
from ..sparse.csr import reduce_rows
from .executor import ExecutionStats, PhaseRecord
from .scheduler import Phase, assign_tasks

__all__ = [
    "SHM_PREFIX",
    "SWEEPS",
    "SharedArena",
    "ProcessPhaseExecutor",
]

#: Prefix of every shared-memory segment this backend creates; the leak
#: tests (and the CI ``/dev/shm`` check) grep for it.
SHM_PREFIX = "repro-shm-"

#: The named kernels a worker can execute.  ``forward``/``backward`` are
#: the vector (BtB pair) sweeps of ``power``; the ``*_block`` variants
#: operate on the interleaved ``(n, 2m)`` block buffer of
#: ``power_block``.
SWEEPS = ("forward", "backward", "forward_block", "backward_block")

_SegmentSpec = Tuple[str, str, Tuple[int, ...]]  # (shm name, dtype, shape)


def _release_segments(owned: List[shared_memory.SharedMemory]) -> None:
    """Close and unlink every owned segment (idempotent, exception-proof).

    ``close()`` can raise ``BufferError`` while numpy views are still
    alive; unlinking is attempted regardless so the ``/dev/shm`` name
    always disappears — the mapping itself is freed when the last view
    dies, which is the POSIX contract.
    """
    for shm in owned:
        try:
            shm.close()
        except BufferError:
            pass
        except OSError:
            pass
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        except OSError:
            pass
    owned.clear()


def _disable_shm_tracking() -> None:
    """Stop this process's resource tracker from adopting *attached*
    segments.

    On Python < 3.13 ``SharedMemory(name=...)`` registers the segment
    even when merely attaching (bpo-38119).  Under the default ``fork``
    start method the workers share the parent's tracker process, so a
    worker's spurious registration (or a compensating ``unregister``)
    would corrupt the parent's own bookkeeping for segments it owns.
    Workers never create segments, so the clean fix is to make
    ``register`` a no-op for the worker's lifetime — ownership and
    unlinking stay entirely with the creating process.
    """
    try:
        from multiprocessing import resource_tracker

        def _noop_register(name, rtype):
            if rtype != "shared_memory":
                _orig_register(name, rtype)

        _orig_register = resource_tracker.register
        resource_tracker.register = _noop_register
    except Exception:
        pass


class SharedArena:
    """A set of named shared-memory segments with leak-proof teardown.

    The creating process calls :meth:`add` per array; workers rebuild
    views from :attr:`spec` via :func:`attach_views`.  Teardown runs on
    :meth:`close`, on garbage collection and at interpreter exit
    (``weakref.finalize`` registers an ``atexit`` hook), whichever comes
    first.
    """

    def __init__(self) -> None:
        self._owned: List[shared_memory.SharedMemory] = []
        self._by_tag: Dict[str, shared_memory.SharedMemory] = {}
        self._views: Dict[str, np.ndarray] = {}
        #: ``tag -> (shm name, dtype str, shape)``; picklable, this is
        #: what crosses the process boundary instead of array payloads.
        self.spec: Dict[str, _SegmentSpec] = {}
        self._finalizer = weakref.finalize(
            self, _release_segments, self._owned)

    def add(self, tag: str, arr: np.ndarray) -> np.ndarray:
        """Create a segment holding a copy of ``arr``; returns the
        shared view (the arena's canonical array for ``tag``)."""
        arr = np.ascontiguousarray(arr)
        name = f"{SHM_PREFIX}{os.getpid():x}-{secrets.token_hex(4)}-{tag}"
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(1, arr.nbytes))
        self._owned.append(shm)
        self._by_tag[tag] = shm
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        self._views[tag] = view
        self.spec[tag] = (shm.name, arr.dtype.str, tuple(arr.shape))
        return view

    def view(self, tag: str) -> np.ndarray:
        """The canonical shared view for ``tag``."""
        return self._views[tag]

    def drop(self, tags: Sequence[str]) -> None:
        """Unlink specific segments early (block-buffer rebinds)."""
        for tag in tags:
            shm = self._by_tag.pop(tag, None)
            if shm is None:
                continue
            self._views.pop(tag, None)
            self.spec.pop(tag, None)
            if shm in self._owned:
                self._owned.remove(shm)
            _release_segments([shm])

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def close(self) -> None:
        """Unlink every segment (idempotent)."""
        self._views.clear()
        self._by_tag.clear()
        self.spec.clear()
        self._finalizer()


# ---------------------------------------------------------------------------
# kernels (run identically in workers and in the serial fallback)
# ---------------------------------------------------------------------------
def _matmat_rows(vals: np.ndarray, cols: np.ndarray, indptr: np.ndarray,
                 X: np.ndarray) -> np.ndarray:
    """Row-segment SpMM mirroring :meth:`CSRMatrix.matmat` branch for
    branch, so block sweeps stay bit-identical to the serial fused
    pipeline's per-row sums."""
    w = X.shape[1]
    if w <= 4:
        gathered = X[cols]
        out_cols = [reduce_rows(vals * gathered[:, j], indptr)
                    for j in range(w)]
        if not out_cols:
            return np.zeros((indptr.shape[0] - 1, 0), dtype=np.float64)
        return np.stack(out_cols, axis=1)
    return reduce_rows(vals[:, None] * X[cols], indptr)


class _Views:
    """Numpy views over the arena segments plus the four sweep kernels.

    Built directly over the creating process's views, or re-attached in
    a worker from the picklable spec.  All kernels slice the shared
    arrays — zero copies on any hot path.
    """

    CORE_TAGS = ("l_indptr", "l_indices", "l_data",
                 "u_indptr", "u_indices", "u_data",
                 "diag", "xy", "tmp")

    def __init__(self, get: Callable[[str], np.ndarray]) -> None:
        (self.l_indptr, self.l_indices, self.l_data,
         self.u_indptr, self.u_indices, self.u_data,
         self.diag, self.xy, self.tmp) = (get(t) for t in self.CORE_TAGS)
        self.xy2 = self.xy.reshape(-1, 2)
        self.xyb: Optional[np.ndarray] = None
        self.tmpb: Optional[np.ndarray] = None

    def bind_block(self, xyb: Optional[np.ndarray],
                   tmpb: Optional[np.ndarray]) -> None:
        self.xyb = xyb
        self.tmpb = tmpb

    # -- sweep kernels --------------------------------------------------
    def _tri(self, lower: bool, start: int, stop: int):
        ip = self.l_indptr if lower else self.u_indptr
        lo, hi = int(ip[start]), int(ip[stop])
        local = ip[start:stop + 1] - lo
        if lower:
            return local, self.l_indices[lo:hi], self.l_data[lo:hi]
        return local, self.u_indices[lo:hi], self.u_data[lo:hi]

    def run(self, sweep: str, start: int, stop: int) -> None:
        """Execute one block task (same arithmetic as the serial fused
        sweeps and the threaded ``_BlockKernel``)."""
        r = slice(start, stop)
        if sweep == "forward":
            ipl, c, v = self._tri(True, start, stop)
            XY, tmp, d = self.xy2, self.tmp, self.diag
            new_odd = tmp[r] + d[r] * XY[r, 0] \
                + reduce_rows(v * XY[c, 0], ipl)
            XY[r, 1] = new_odd
            tmp[r] = reduce_rows(v * XY[c, 1], ipl) + d[r] * new_odd
        elif sweep == "backward":
            ipl, c, v = self._tri(False, start, stop)
            XY, tmp = self.xy2, self.tmp
            XY[r, 0] = tmp[r] + reduce_rows(v * XY[c, 1], ipl)
            tmp[r] = reduce_rows(v * XY[c, 0], ipl)
        elif sweep == "forward_block":
            # The odd-slot product must be gathered AFTER the new odd
            # iterate is written: intra-block dependencies read values
            # step 1 of this very block produced (same two-step
            # discipline as the vector kernel above).
            ipl, c, v = self._tri(True, start, stop)
            XYB, TMPB, d = self.xyb, self.tmpb, self.diag
            dcol = d[r][:, None]
            new_odd = TMPB[r] + dcol * XYB[r, 0::2] \
                + _matmat_rows(v, c, ipl, XYB[:, 0::2])
            XYB[r, 1::2] = new_odd
            TMPB[r] = _matmat_rows(v, c, ipl, XYB[:, 1::2]) \
                + dcol * new_odd
        elif sweep == "backward_block":
            ipl, c, v = self._tri(False, start, stop)
            XYB, TMPB = self.xyb, self.tmpb
            XYB[r, 0::2] = TMPB[r] + _matmat_rows(v, c, ipl, XYB[:, 1::2])
            TMPB[r] = _matmat_rows(v, c, ipl, XYB[:, 0::2])
        else:  # pragma: no cover - dispatch validates sweeps
            raise ValueError(f"unknown sweep {sweep!r}")


class _AttachedSegments:
    """Worker-side attachment: maps the named segments read-only-cheap
    (same physical pages) and yields numpy views."""

    def __init__(self, spec: Dict[str, _SegmentSpec]) -> None:
        self._shms: List[shared_memory.SharedMemory] = []
        self._views: Dict[str, np.ndarray] = {}
        for tag, (name, dtype, shape) in spec.items():
            shm = shared_memory.SharedMemory(name=name)
            self._shms.append(shm)
            self._views[tag] = np.ndarray(shape, dtype=np.dtype(dtype),
                                          buffer=shm.buf)

    def view(self, tag: str) -> np.ndarray:
        return self._views[tag]

    def close(self) -> None:
        self._views.clear()
        for shm in self._shms:
            try:
                shm.close()
            except BufferError:
                pass
        self._shms.clear()


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------
def _worker_main(worker_id: int, core_spec: Dict[str, _SegmentSpec],
                 block_spec: Optional[Dict[str, _SegmentSpec]],
                 inq, outq, task_hook) -> None:
    """Worker loop: attach once, then execute ``(phase, colour, blocks,
    slot, trace)`` descriptors until told to stop.  Never touches a
    queue with array data — all arrays live in the mapped segments."""
    _disable_shm_tracking()
    core = _AttachedSegments(core_spec)
    views = _Views(core.view)
    # The heartbeat slab rides in the core spec but is not a _Views tag:
    # it is watchdog bookkeeping, not sweep data.  CLOCK_MONOTONIC is
    # system-wide on the platforms with shared memory, so the parent can
    # compare these stamps against its own clock.
    hb = core.view("hb") if "hb" in core_spec else None
    # Span ring (same slab discipline): exec/wait spans written here are
    # merged into the dispatcher's trace after each barrier.  Recording
    # is gated on the descriptor carrying a trace tuple, so with
    # telemetry off the only cost per phase is one tuple unpack.
    ring = None
    if all(t in core_spec for t in ("sr_i", "sr_f", "sr_n")):
        ring = RingWriter(core.view("sr_i"), core.view("sr_f"),
                          core.view("sr_n"), worker_id)
    pid = os.getpid()
    t_idle0 = time.monotonic()
    blk: Optional[_AttachedSegments] = None

    def bind(spec: Optional[Dict[str, _SegmentSpec]]) -> None:
        nonlocal blk
        views.bind_block(None, None)
        if blk is not None:
            blk.close()
            blk = None
        if spec is not None:
            blk = _AttachedSegments(spec)
            views.bind_block(blk.view("xyb"), blk.view("tmpb"))

    bind(block_spec)
    try:
        while True:
            msg = inq.get()
            if msg is None:
                break
            if msg[0] == "block":
                bind(msg[1])
                continue
            # ("phase", sweep, phase_index, color, [(start, stop)...],
            #  slot, trace) — trace is None (telemetry off in the
            #  dispatcher) or (trace_id, parent_span_id).
            _, sweep, pi, color, blocks, slot, trace = msg
            t_mono0 = time.monotonic()
            sweep_idx = SWEEPS.index(sweep) if sweep in SWEEPS else -1
            if ring is not None and trace is not None:
                # The gap since the previous phase finished: barrier
                # wait for the stragglers plus dispatch latency.
                ring.record(KIND_WAIT, pi, color, 0, trace[1], trace[0],
                            sweep_idx, pid, t_idle0, t_mono0 - t_idle0)
            t0 = time.perf_counter()
            start = stop = -1
            try:
                for start, stop in blocks:
                    if hb is not None:
                        hb[worker_id] = time.monotonic()
                    # Fires in the *worker* (injector inherited across
                    # fork): a HangFault here freezes this heartbeat
                    # while the parent stays live — the exact condition
                    # the watchdog exists to catch.
                    _fire_fault("procexec.heartbeat", worker=worker_id,
                                phase_index=pi, color=color)
                    if task_hook is not None:
                        task_hook(sweep=sweep, phase_index=pi, color=color,
                                  start=start, stop=stop, worker=slot)
                    views.run(sweep, start, stop)
                if ring is not None and trace is not None:
                    # Written before the ack: the queue put/get pair
                    # orders this record before the dispatcher's
                    # post-barrier drain.
                    ring.record(KIND_EXEC, pi, color, len(blocks),
                                trace[1], trace[0], sweep_idx, pid,
                                t_mono0, time.monotonic() - t_mono0)
                t_idle0 = time.monotonic()
                outq.put(("ok", slot, time.perf_counter() - t0))
            except BaseException as exc:  # noqa: BLE001 - forwarded
                try:  # only picklable causes may cross the boundary
                    pickle.dumps(exc)
                except Exception:
                    exc = RuntimeError(repr(exc))
                if ring is not None and trace is not None:
                    ring.record(KIND_EXEC, pi, color, len(blocks),
                                trace[1], trace[0], sweep_idx, pid,
                                t_mono0, time.monotonic() - t_mono0)
                t_idle0 = time.monotonic()
                outq.put(("err", slot, pi, color, (start, stop), exc,
                          time.perf_counter() - t0))
    finally:
        if blk is not None:
            blk.close()
        core.close()


def _picklable_hook_check(task_hook) -> None:
    if task_hook is None:
        return
    try:
        pickle.dumps(task_hook)
    except Exception as exc:
        raise ValueError(
            "task_hook must be picklable (module-level callable), got "
            f"{task_hook!r}") from exc


# ---------------------------------------------------------------------------
# the executor
# ---------------------------------------------------------------------------
@dataclass
class _PoolState:
    workers: List
    inqs: List
    outq: object


class ProcessPhaseExecutor:
    """Persistent process pool running colour phases over shared memory.

    One barrier closes each phase, exactly as in the threaded executor;
    all operands live in a zero-copy :class:`SharedArena`.

    Parameters
    ----------
    part:
        The ``L + D + U`` :class:`~repro.core.partition.TriangularPartition`
        whose triangles, diagonal and working buffers are shared.
    n_workers, policy:
        Static-assignment parameters, identical in meaning to the
        threaded executor's (bins map one-to-one onto workers).
    on_failure:
        ``"raise"`` propagates a :class:`PhaseExecutionError`;
        ``"fallback_serial"`` (with a ``reset`` callback passed to
        :meth:`run_phases`) rolls back and re-runs the phases in the
        calling process — bit-identical to a clean serial run.
    hang_timeout:
        Seconds a dispatched worker may go without stamping its
        heartbeat before the watchdog SIGKILLs it (None — the default —
        disables the watchdog; barriers then wait indefinitely, the
        pre-watchdog behaviour).  A killed worker follows the ordinary
        dead-worker failure path, so ``fallback_serial`` still yields a
        correct answer.  SIGKILL is deliberate: it is the only signal a
        SIGSTOP'd process cannot ignore or defer.
    mp_context:
        Start method (default: ``"fork"`` where available, else
        ``"spawn"``).
    task_hook:
        Optional picklable callable invoked in the *worker* before every
        block task (test instrumentation / in-worker chaos); the
        standard ``"executor.task"`` chaos hook additionally fires in
        the parent at dispatch time.
    """

    def __init__(self, part, n_workers: Optional[int] = None,
                 policy: str = "lpt", on_failure: str = "raise",
                 mp_context: Optional[str] = None,
                 task_hook=None,
                 hang_timeout: Optional[float] = None) -> None:
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        if n_workers < 1:
            raise ValueError("n_workers must be positive")
        if on_failure not in ("raise", "fallback_serial"):
            raise ValueError(f"unknown on_failure policy {on_failure!r}")
        if hang_timeout is not None and hang_timeout <= 0:
            raise ValueError("hang_timeout must be positive (or None)")
        _picklable_hook_check(task_hook)
        self.n_workers = int(n_workers)
        self.policy = policy
        self.on_failure = on_failure
        self.task_hook = task_hook
        self.hang_timeout = None if hang_timeout is None \
            else float(hang_timeout)
        if mp_context is None:
            mp_context = ("fork" if "fork" in mp.get_all_start_methods()
                          else "spawn")
        self._ctx = mp.get_context(mp_context)
        self.n = int(part.diag.shape[0])
        self.arena = SharedArena()
        self.arena.add("l_indptr", part.lower.indptr)
        self.arena.add("l_indices", part.lower.indices)
        self.arena.add("l_data", part.lower.data)
        self.arena.add("u_indptr", part.upper.indptr)
        self.arena.add("u_indices", part.upper.indices)
        self.arena.add("u_data", part.upper.data)
        self.arena.add("diag", part.diag)
        self.arena.add("xy", np.zeros(2 * self.n, dtype=np.float64))
        self.arena.add("tmp", np.zeros(self.n, dtype=np.float64))
        # Heartbeat slab: workers stamp hb[i] = monotonic() per block;
        # the watchdog in _await_acks compares against its own clock.
        self._hb = self.arena.add(
            "hb", np.zeros(self.n_workers, dtype=np.float64))
        # Span rings: one single-writer ring per worker (see
        # repro.obs.spanring).  Plain int64/float64 arrays — the arena
        # spec round-trips dtype strings, which would mangle a
        # structured dtype.
        shp_i, shp_f, shp_n = ring_shapes(self.n_workers,
                                          DEFAULT_RING_CAPACITY)
        sr_i = self.arena.add("sr_i", np.zeros(shp_i, dtype=np.int64))
        sr_f = self.arena.add("sr_f", np.zeros(shp_f, dtype=np.float64))
        sr_n = self.arena.add("sr_n", np.zeros(shp_n, dtype=np.int64))
        self._ring_reader: Optional[RingReader] = RingReader(
            sr_i, sr_f, sr_n)
        self._views: Optional[_Views] = _Views(self.arena.view)
        self._pool: Optional[_PoolState] = None
        self._blk_m: Optional[int] = None

    # -- shared buffers -------------------------------------------------
    @property
    def xy(self) -> np.ndarray:
        """The shared length-``2n`` BtB iterate buffer."""
        return self.arena.view("xy")

    @property
    def tmp(self) -> np.ndarray:
        """The shared length-``n`` sweep temporary."""
        return self.arena.view("tmp")

    def ensure_block(self, m: int) -> Tuple[np.ndarray, np.ndarray]:
        """The shared block buffers for ``power_block`` with ``m``
        columns: the ``(n, 2m)`` interleaved iterate block and the
        ``(n, m)`` temporary.  (Re)allocated only when ``m`` changes;
        running workers are rebound in-band, so descriptor ordering
        guarantees they never touch a stale segment."""
        if m < 0:
            raise ValueError("m must be non-negative")
        if self._blk_m != m:
            self.arena.drop(("xyb", "tmpb"))
            xyb = self.arena.add(
                "xyb", np.zeros((self.n, 2 * m), dtype=np.float64))
            tmpb = self.arena.add(
                "tmpb", np.zeros((self.n, m), dtype=np.float64))
            self._views.bind_block(xyb, tmpb)
            self._blk_m = m
            if self._pool is not None:
                spec = self._block_spec()
                for q in self._pool.inqs:
                    q.put(("block", spec))
        return self._views.xyb, self._views.tmpb

    def _block_spec(self) -> Optional[Dict[str, _SegmentSpec]]:
        if self._blk_m is None:
            return None
        return {t: self.arena.spec[t] for t in ("xyb", "tmpb")}

    # -- lifecycle ------------------------------------------------------
    def _ensure_pool(self) -> _PoolState:
        if self._pool is None:
            core = {t: self.arena.spec[t]
                    for t in _Views.CORE_TAGS
                    + ("hb", "sr_i", "sr_f", "sr_n")}
            outq = self._ctx.Queue()
            inqs = [self._ctx.SimpleQueue()
                    for _ in range(self.n_workers)]
            workers = []
            for i in range(self.n_workers):
                w = self._ctx.Process(
                    target=_worker_main,
                    args=(i, core, self._block_spec(), inqs[i], outq,
                          self.task_hook),
                    name=f"fbmpk-proc-{i}", daemon=True)
                w.start()
                workers.append(w)
            self._pool = _PoolState(workers=workers, inqs=inqs, outq=outq)
            obs.add_counter("procexec.pool_spawns")
        return self._pool

    def start(self) -> List[int]:
        """Spawn the pool eagerly; returns the worker PIDs (used by the
        fault-injection tests to SIGKILL a live worker)."""
        pool = self._ensure_pool()
        return [w.pid for w in pool.workers]

    def worker_liveness(self) -> Optional[List[bool]]:
        """Per-worker liveness snapshot for health endpoints: None when
        no pool is running, else one bool per worker slot."""
        pool = self._pool
        if pool is None:
            return None
        return [w.is_alive() for w in pool.workers]

    def heartbeat_ages(self) -> Optional[List[Optional[float]]]:
        """Seconds since each worker last stamped its heartbeat slab
        (None per slot when the worker has never stamped; None overall
        when no pool is running).  Usable without a hang_timeout — the
        slab is stamped unconditionally."""
        if self._pool is None or self._hb is None:
            return None
        now = time.monotonic()
        return [now - float(t) if t > 0 else None for t in self._hb]

    def publish_metrics(self) -> None:
        """Push pool-liveness gauges into the active telemetry session
        (no-op when telemetry is off): ``procexec.workers_alive`` and a
        ``procexec.heartbeat_age_s.w<i>`` gauge per worker, so ``/metrics``
        scrapes see what previously only the ``health`` op reported."""
        if obs.current() is None:
            return
        alive = self.worker_liveness()
        if alive is not None:
            obs.set_gauge("procexec.workers_alive", float(sum(alive)))
        ages = self.heartbeat_ages()
        if ages is not None:
            for i, age in enumerate(ages):
                if age is not None:
                    obs.set_gauge(f"procexec.heartbeat_age_s.w{i}",
                                  age, unit="s")

    def _shutdown_pool(self) -> None:
        """Stop every worker and discard the queues (idempotent).  The
        arena survives — a later dispatch respawns the pool over the
        same segments.

        Escalation ladder so shutdown can never hang on a stuck worker:
        sentinel + 2 s cooperative join, then ``terminate()`` (SIGTERM)
        + 2 s, then ``kill()`` (SIGKILL, which even a SIGSTOP'd process
        cannot survive) + final join to reap."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for w, q in zip(pool.workers, pool.inqs):
            if w.is_alive():
                try:
                    q.put(None)
                except (OSError, ValueError):
                    pass
        for w in pool.workers:
            w.join(timeout=2.0)
        for w in pool.workers:
            if w.is_alive():
                w.terminate()
                w.join(timeout=2.0)
        for w in pool.workers:
            if w.is_alive():
                obs.add_counter("procexec.shutdown_kills")
                w.kill()
                w.join(timeout=2.0)
        for q in pool.inqs:
            q.close()
        pool.outq.close()

    def close(self) -> None:
        """Shut the pool down and unlink every shared segment
        (idempotent).  Buffers obtained from :attr:`xy`/:attr:`tmp`/
        :meth:`ensure_block` must not be used afterwards.  The arena is
        unlinked even if pool teardown raises — ``/dev/shm`` hygiene
        must not depend on worker cooperation."""
        try:
            self._shutdown_pool()
        finally:
            self._views = None
            self._hb = None
            self._ring_reader = None
            self._blk_m = None
            self.arena.close()

    def __enter__(self) -> "ProcessPhaseExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution ------------------------------------------------------
    def run_serial(self, phases: Sequence[Phase], sweep: str,
                   stats: Optional[ExecutionStats] = None
                   ) -> ExecutionStats:
        """Execute ``phases`` in the calling process, tasks in declared
        order, over the same shared buffers — the reference the
        dispatched path must be bit-identical to, and the
        ``fallback_serial`` target.  Busy time accrues to bin 0."""
        if sweep not in SWEEPS:
            raise ValueError(f"unknown sweep {sweep!r}")
        if stats is None:
            stats = ExecutionStats(n_threads=self.n_workers,
                                   policy=self.policy)
        views = self._views
        for pi, phase in enumerate(phases):
            with obs.span("executor.phase", phase=pi, colour=phase.color,
                          n_tasks=len(phase.tasks), nnz=phase.total_nnz,
                          mode="serial"):
                t0 = time.perf_counter()
                for task in phase.tasks:
                    views.run(sweep, task.start, task.stop)
                elapsed = time.perf_counter() - t0
            stats.thread_busy_s[0] += elapsed
            self._finish_phase(stats, phase, elapsed)
        return stats

    def run_phases(self, phases: Sequence[Phase], sweep: str,
                   stats: Optional[ExecutionStats] = None,
                   reset: Optional[Callable[[], None]] = None
                   ) -> ExecutionStats:
        """Execute ``phases`` on the worker pool with a barrier after
        every phase, dispatching only descriptors.

        ``reset`` is the rollback hook of ``on_failure=
        "fallback_serial"``: on any failure (worker exception, injected
        dispatch fault, or a killed worker) the barrier drains every
        live bin, the pool is torn down, ``reset`` restores the shared
        buffers, and :meth:`run_serial` re-runs everything in-process.
        """
        if sweep not in SWEEPS:
            raise ValueError(f"unknown sweep {sweep!r}")
        if stats is None:
            stats = ExecutionStats(n_threads=self.n_workers,
                                   policy=self.policy)
        snap = (len(stats.phases), stats.barriers,
                list(stats.thread_busy_s))
        pool = self._ensure_pool()
        tel = obs.current()
        for pi, phase in enumerate(phases):
            with obs.span("executor.phase", phase=pi, colour=phase.color,
                          n_tasks=len(phase.tasks), nnz=phase.total_nnz,
                          mode="processes") as sp:
                # Trace context shipped with the descriptors: workers
                # stamp their ring spans with the dispatcher's trace id
                # and parent this very executor.phase span.
                trace = None if tel is None \
                    else (tel.recorder.trace_id, sp.span_id)
                t0 = time.perf_counter()
                bins = assign_tasks(phase.tasks, self.n_workers,
                                    policy=self.policy)
                failure = self._dispatch_and_drain(pool, bins, sweep, pi,
                                                   phase, stats, trace)
                elapsed = time.perf_counter() - t0
            if failure is not None:
                self._drain_spans()
                self._shutdown_pool()
                obs.add_counter("executor.failed_phases")
                if self.on_failure == "fallback_serial" \
                        and reset is not None:
                    stats.phases[:] = stats.phases[:snap[0]]
                    stats.barriers = snap[1]
                    stats.thread_busy_s[:] = snap[2]
                    reset()
                    return self.run_serial(phases, sweep, stats)
                raise failure
            self._finish_phase(stats, phase, elapsed)
        self._drain_spans()
        self.publish_metrics()
        return stats

    def _drain_spans(self) -> None:
        """Merge worker span-ring records into the active recorder.

        Runs after the barrier has closed, so every record for the
        phases just executed is visible (the ack queue orders the ring
        writes before the parent's reads).  Counts surface as
        ``procexec.spans_merged`` / ``procexec.spans_dropped``."""
        tel = obs.current()
        if tel is None or self._ring_reader is None:
            return
        merged, dropped = self._ring_reader.drain(tel.recorder,
                                                  sweep_names=SWEEPS)
        if merged:
            obs.add_counter("procexec.spans_merged", merged)
        if dropped:
            obs.add_counter("procexec.spans_dropped", dropped)

    def _dispatch_and_drain(self, pool: _PoolState, bins, sweep: str,
                            pi: int, phase: Phase, stats: ExecutionStats,
                            trace: Optional[Tuple[int, int]] = None
                            ) -> Optional[PhaseExecutionError]:
        """Send each non-empty bin to its worker and await one ack per
        dispatched bin — the phase barrier.  Returns the first failure
        (never raises before the barrier has drained every live bin)."""
        failure: Optional[PhaseExecutionError] = None
        fault_s = 0.0
        dispatched: List[int] = []
        for i, b in enumerate(bins):
            if not b:
                continue
            if failure is None:
                task = None
                try:
                    for task in b:
                        fault_s += _fire_fault_timed(
                            "executor.task", phase_index=pi,
                            color=phase.color, start=task.start,
                            stop=task.stop, thread=i)
                except BaseException as exc:  # injected dispatch fault
                    failure = PhaseExecutionError(
                        f"injected fault at dispatch: {exc!r}",
                        phase_index=pi, color=phase.color,
                        block=(task.start, task.stop) if task else None,
                        thread=i)
                    failure.__cause__ = exc
                    continue  # later bins stay undispatched
                pool.inqs[i].put(
                    ("phase", sweep, pi, phase.color,
                     [(t.start, t.stop) for t in b], i, trace))
                dispatched.append(i)
        if fault_s:
            obs.add_counter("faults.injected_delay_s", fault_s, unit="s")
        drain_failure = self._await_acks(pool, dispatched, pi, phase,
                                         stats)
        return failure if failure is not None else drain_failure

    def _await_acks(self, pool: _PoolState, dispatched: List[int],
                    pi: int, phase: Phase, stats: ExecutionStats
                    ) -> Optional[PhaseExecutionError]:
        pending = set(dispatched)
        failure: Optional[PhaseExecutionError] = None
        t_dispatch = time.monotonic()
        last_scan = t_dispatch
        t_acks: Dict[int, float] = {}
        while pending:
            try:
                msg = pool.outq.get(timeout=0.2)
            except _queue.Empty:
                msg = None
            # Scan on every Empty and at least every 0.2 s even while
            # acks are flowing, so one chatty worker cannot starve the
            # watchdog of a silent one.
            now = time.monotonic()
            if msg is None or now - last_scan >= 0.2:
                last_scan = now
                failure = self._scan_pending(pool, pending, pi, phase,
                                             t_dispatch, now, failure)
            if msg is None:
                continue
            if msg[0] == "ok":
                _, slot, busy = msg
                stats.thread_busy_s[slot] += busy
                pending.discard(slot)
                t_acks[slot] = time.monotonic()
            elif msg[0] == "err":
                _, slot, epi, ecolor, block, exc, busy = msg
                stats.thread_busy_s[slot] += busy
                pending.discard(slot)
                t_acks[slot] = time.monotonic()
                if failure is None:
                    failure = PhaseExecutionError(
                        f"block task crashed in worker {slot}: {exc!r}",
                        phase_index=epi, color=ecolor, block=block,
                        thread=slot)
                    failure.__cause__ = exc
        # Per-worker barrier wait: how long each finished bin's ack sat
        # waiting for the last straggler to close the phase (the
        # processes-vs-threads overhead the benchmarks argue about).
        if t_acks and obs.current() is not None:
            t_close = time.monotonic()
            for slot, t_ack in t_acks.items():
                obs.observe("procexec.barrier_wait", t_close - t_ack,
                            unit="s")
        return failure

    def _scan_pending(self, pool: _PoolState, pending: set, pi: int,
                      phase: Phase, t_dispatch: float, now: float,
                      failure: Optional[PhaseExecutionError]
                      ) -> Optional[PhaseExecutionError]:
        """One watchdog pass over the still-pending bins: collect dead
        workers and — when a ``hang_timeout`` is armed — SIGKILL any
        alive worker whose heartbeat has not moved since dispatch."""
        for i in sorted(pending):
            w = pool.workers[i]
            if not w.is_alive():
                pending.discard(i)
                if failure is None:
                    failure = PhaseExecutionError(
                        f"worker {i} died before completing its bin "
                        f"(exitcode {w.exitcode})",
                        phase_index=pi, color=phase.color, thread=i)
                continue
            if self.hang_timeout is None:
                continue
            # max() with t_dispatch: a worker that never reached its
            # first stamp (hung in queue pickup, heartbeat still at a
            # previous phase's value or 0) is measured from dispatch.
            silent_s = now - max(float(self._hb[i]), t_dispatch)
            if silent_s <= self.hang_timeout:
                continue
            w.kill()  # SIGKILL: the only signal a SIGSTOP'd worker obeys
            w.join(timeout=2.0)
            pending.discard(i)
            obs.add_counter("procexec.watchdog_kills")
            if failure is None:
                failure = PhaseExecutionError(
                    f"watchdog killed worker {i}: no heartbeat for "
                    f"{silent_s:.2f}s (hang_timeout={self.hang_timeout}s)",
                    phase_index=pi, color=phase.color, thread=i)
        return failure

    @staticmethod
    def _finish_phase(stats: ExecutionStats, phase: Phase,
                      wall_s: float) -> None:
        stats.barriers += 1
        stats.phases.append(PhaseRecord(
            color=phase.color, n_tasks=len(phase.tasks),
            nnz=phase.total_nnz, wall_s=wall_s))
        if obs.current() is None:
            return
        obs.add_counter("executor.barriers")
        obs.add_counter("executor.tasks", len(phase.tasks))
        obs.add_counter("executor.phase_nnz", phase.total_nnz)
        obs.observe("executor.phase_wall_s", wall_s, unit="s")
