"""Zero-copy shared-memory process-parallel backend for FBMPK colour phases.

The threaded executor (:mod:`repro.parallel.executor`) runs the paper's
colour-phase schedule on real OS threads, but CPython only lets those
threads overlap where the NumPy kernels drop the GIL — for small blocks
the interpreter serialises the schedule.  This module provides the
backend that sidesteps the GIL entirely: a persistent pool of worker
*processes* over :mod:`multiprocessing.shared_memory`.

The design is zero-copy by construction.  At pool construction the CSR
triangles (``indptr``/``indices``/``data`` of L and U), the diagonal,
the BtB interleaved iterate buffer and the sweep temporary are placed in
named shared-memory segments; every worker maps the same segments and
builds plain numpy views over them.  Dispatching a phase therefore ships
only a tiny ``(phase_idx, lo, hi)`` triple per worker over a queue —
never array payloads, exactly as the distributed matrix-power kernels of
Alappat et al. ship halo metadata rather than matrix data.

Dispatch is *batched* (see :mod:`repro.parallel.dispatch`): the phase
schedule is packed once, at registration time, into contiguous
descriptor arrays living in the arena, so a sweep performs one enqueue
per phase per **worker** — a ``(phase_idx, lo, hi)`` triple — instead of
one message per block.  Workers claim blocks from the shared descriptor
table via a chunked work-stealing cursor (a lock-guarded fetch-and-add
on an arena-resident counter), and the phase barrier is an atomic
completion counter plus a single event: every worker decrements once
after draining the cursor, the last one out flips the event the
dispatcher is waiting on.  No per-block round-trips exist anywhere on
the hot path.  The claim order within a phase is irrelevant for
correctness — same-colour blocks touch disjoint vector elements, so
per-colour block results are order-independent — and the per-row
arithmetic in the workers is the same ``reduce_rows`` reduction the
serial and threaded paths use, so results are **bit-identical** to a
serial run.

Failure containment matches :class:`ThreadedPhaseExecutor` and extends
it with dead-worker *and hung-worker* detection: a worker exception
crosses the process boundary as a pickled cause chained into a typed
:class:`~repro.robust.errors.PhaseExecutionError` (the worker still
decrements the completion counter in a ``finally``, so an erroring
worker closes the barrier rather than wedging it); a SIGKILL'd worker
never decrements, which the dispatcher's bounded event wait detects by
liveness polling — it then arrives at the barrier on the dead worker's
behalf; and — when a ``hang_timeout`` is set — a worker that is alive
but silent (SIGSTOP'd, wedged in a syscall, spinning) is caught by a
heartbeat watchdog.  Workers stamp a shared-memory heartbeat slab
before every claimed block; the dispatcher scans the slab while waiting
on the completion event and SIGKILLs any pending worker whose heartbeat
has not moved within ``hang_timeout``, converting the hang into the
ordinary dead-worker failure.  A worker killed *inside* the claim
lock's critical section poisons the lock; every dispatcher acquisition
is bounded, so a poisoned lock degrades into an ordinary phase failure
(pool teardown replaces the lock) instead of a hang.  Either way the
pool is torn down (a later call respawns it), and
``on_failure="fallback_serial"`` re-runs the phases in the calling
process from a caller-provided ``reset`` snapshot.  The
``"executor.task"`` chaos hook fires in the parent at dispatch time
(per block, only while an injector is active) and
``"procexec.heartbeat"`` fires in the worker per block (inherited
across ``fork``), so the fault-injection suite can stall a worker
without stalling the parent.

Shared-memory lifecycle is leak-proof: segments are unlinked by
``close()``/context-manager exit, by a ``weakref.finalize`` finaliser
(which doubles as an ``atexit`` hook), and unlinking is decoupled from
buffer release so even live outstanding views cannot keep a name in
``/dev/shm``.  ``tests/parallel/test_process_executor.py`` asserts no
residue survives the crash paths.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as _queue
import secrets
import time
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..obs.spanring import (
    KIND_EXEC,
    KIND_WAIT,
    DEFAULT_RING_CAPACITY,
    RingReader,
    RingWriter,
    ring_shapes,
)
from ..robust.errors import PhaseExecutionError
from ..robust.faults import active_injectors as _active_injectors
from ..robust.faults import fire as _fire_fault
from ..robust.faults import fire_timed as _fire_fault_timed
from ..reorder.levels_blocked import OP_EVEN, OP_FINAL_ODD, OP_ODD
from ..sparse.csr import reduce_rows
from .dispatch import (
    CTRL_CURSOR,
    CTRL_EPOCH,
    CTRL_ERRORS,
    CTRL_REMAINING,
    CTRL_SLOTS,
    CompletionBarrier,
    DescriptorBatch,
    SharedCursor,
    default_claim_chunk,
    pin_worker,
)
from .executor import ExecutionStats, PhaseRecord
from .scheduler import Phase

__all__ = [
    "SHM_PREFIX",
    "SWEEPS",
    "SharedArena",
    "ProcessPhaseExecutor",
]

#: Prefix of every shared-memory segment this backend creates; the leak
#: tests (and the CI ``/dev/shm`` check) grep for it.
SHM_PREFIX = "repro-shm-"

#: The named kernels a worker can execute.  ``forward``/``backward`` are
#: the vector (BtB pair) sweeps of ``power``; the ``*_block`` variants
#: operate on the interleaved ``(n, 2m)`` block buffer of
#: ``power_block``; ``blocked`` is the levels-blocked wavefront update,
#: whose per-descriptor op tag (row 2 of the plan table) selects the
#: update kind.
SWEEPS = ("forward", "backward", "forward_block", "backward_block",
          "blocked")

_SegmentSpec = Tuple[str, str, Tuple[int, ...]]  # (shm name, dtype, shape)


def _release_segments(owned: List[shared_memory.SharedMemory]) -> None:
    """Close and unlink every owned segment (idempotent, exception-proof).

    ``close()`` can raise ``BufferError`` while numpy views are still
    alive; unlinking is attempted regardless so the ``/dev/shm`` name
    always disappears — the mapping itself is freed when the last view
    dies, which is the POSIX contract.
    """
    for shm in owned:
        try:
            shm.close()
        except BufferError:
            pass
        except OSError:
            pass
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        except OSError:
            pass
    owned.clear()


def _disable_shm_tracking() -> None:
    """Stop this process's resource tracker from adopting *attached*
    segments.

    On Python < 3.13 ``SharedMemory(name=...)`` registers the segment
    even when merely attaching (bpo-38119).  Under the default ``fork``
    start method the workers share the parent's tracker process, so a
    worker's spurious registration (or a compensating ``unregister``)
    would corrupt the parent's own bookkeeping for segments it owns.
    Workers never create segments, so the clean fix is to make
    ``register`` a no-op for the worker's lifetime — ownership and
    unlinking stay entirely with the creating process.
    """
    try:
        from multiprocessing import resource_tracker

        def _noop_register(name, rtype):
            if rtype != "shared_memory":
                _orig_register(name, rtype)

        _orig_register = resource_tracker.register
        resource_tracker.register = _noop_register
    except Exception:
        pass


class SharedArena:
    """A set of named shared-memory segments with leak-proof teardown.

    The creating process calls :meth:`add` per array; workers rebuild
    views from :attr:`spec` via :func:`attach_views`.  Teardown runs on
    :meth:`close`, on garbage collection and at interpreter exit
    (``weakref.finalize`` registers an ``atexit`` hook), whichever comes
    first.
    """

    def __init__(self) -> None:
        self._owned: List[shared_memory.SharedMemory] = []
        self._by_tag: Dict[str, shared_memory.SharedMemory] = {}
        self._views: Dict[str, np.ndarray] = {}
        #: ``tag -> (shm name, dtype str, shape)``; picklable, this is
        #: what crosses the process boundary instead of array payloads.
        self.spec: Dict[str, _SegmentSpec] = {}
        self._finalizer = weakref.finalize(
            self, _release_segments, self._owned)

    def add(self, tag: str, arr: np.ndarray) -> np.ndarray:
        """Create a segment holding a copy of ``arr``; returns the
        shared view (the arena's canonical array for ``tag``)."""
        arr = np.ascontiguousarray(arr)
        name = f"{SHM_PREFIX}{os.getpid():x}-{secrets.token_hex(4)}-{tag}"
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(1, arr.nbytes))
        self._owned.append(shm)
        self._by_tag[tag] = shm
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        self._views[tag] = view
        self.spec[tag] = (shm.name, arr.dtype.str, tuple(arr.shape))
        return view

    def view(self, tag: str) -> np.ndarray:
        """The canonical shared view for ``tag``."""
        return self._views[tag]

    def drop(self, tags: Sequence[str]) -> None:
        """Unlink specific segments early (block-buffer rebinds)."""
        for tag in tags:
            shm = self._by_tag.pop(tag, None)
            if shm is None:
                continue
            self._views.pop(tag, None)
            self.spec.pop(tag, None)
            if shm in self._owned:
                self._owned.remove(shm)
            _release_segments([shm])

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def close(self) -> None:
        """Unlink every segment (idempotent)."""
        self._views.clear()
        self._by_tag.clear()
        self.spec.clear()
        self._finalizer()


# ---------------------------------------------------------------------------
# kernels (run identically in workers and in the serial fallback)
# ---------------------------------------------------------------------------
def _matmat_rows(vals: np.ndarray, cols: np.ndarray, indptr: np.ndarray,
                 X: np.ndarray) -> np.ndarray:
    """Row-segment SpMM mirroring :meth:`CSRMatrix.matmat` branch for
    branch, so block sweeps stay bit-identical to the serial fused
    pipeline's per-row sums."""
    w = X.shape[1]
    if w <= 4:
        gathered = X[cols]
        out_cols = [reduce_rows(vals * gathered[:, j], indptr)
                    for j in range(w)]
        if not out_cols:
            return np.zeros((indptr.shape[0] - 1, 0), dtype=np.float64)
        return np.stack(out_cols, axis=1)
    return reduce_rows(vals[:, None] * X[cols], indptr)


class _Views:
    """Numpy views over the arena segments plus the four sweep kernels.

    Built directly over the creating process's views, or re-attached in
    a worker from the picklable spec.  All kernels slice the shared
    arrays — zero copies on any hot path.
    """

    CORE_TAGS = ("l_indptr", "l_indices", "l_data",
                 "u_indptr", "u_indices", "u_data",
                 "diag", "xy", "tmp")

    def __init__(self, get: Callable[[str], np.ndarray]) -> None:
        (self.l_indptr, self.l_indices, self.l_data,
         self.u_indptr, self.u_indices, self.u_data,
         self.diag, self.xy, self.tmp) = (get(t) for t in self.CORE_TAGS)
        self.xy2 = self.xy.reshape(-1, 2)
        self.xyb: Optional[np.ndarray] = None
        self.tmpb: Optional[np.ndarray] = None

    def bind_block(self, xyb: Optional[np.ndarray],
                   tmpb: Optional[np.ndarray]) -> None:
        self.xyb = xyb
        self.tmpb = tmpb

    # -- sweep kernels --------------------------------------------------
    def _tri(self, lower: bool, start: int, stop: int):
        ip = self.l_indptr if lower else self.u_indptr
        lo, hi = int(ip[start]), int(ip[stop])
        local = ip[start:stop + 1] - lo
        if lower:
            return local, self.l_indices[lo:hi], self.l_data[lo:hi]
        return local, self.u_indices[lo:hi], self.u_data[lo:hi]

    def run(self, sweep: str, start: int, stop: int,
            op: int = -1) -> None:
        """Execute one block task (same arithmetic as the serial fused
        sweeps and the threaded ``_BlockKernel``).  ``op`` is the
        per-descriptor update kind of the ``"blocked"`` sweep (ignored
        by the colour-phase sweeps, whose name fixes the kernel)."""
        r = slice(start, stop)
        if sweep == "blocked":
            # Levels-blocked ping-pong update: odd powers read BtB slot
            # 0 and write slot 1, even powers the reverse; the three
            # association orders reproduce the serial FBMPK stage that
            # produces the same power (see repro.reorder.levels_blocked).
            XY, d = self.xy2, self.diag
            rs, ws = (1, 0) if op == OP_EVEN else (0, 1)
            ipl, cl, vl = self._tri(True, start, stop)
            ipu, cu, vu = self._tri(False, start, stop)
            xin = XY[:, rs]
            lsum = reduce_rows(vl * xin[cl], ipl)
            usum = reduce_rows(vu * xin[cu], ipu)
            dx = d[r] * xin[r]
            if op == OP_ODD:          # forward-stage order
                XY[r, ws] = usum + dx + lsum
            elif op == OP_EVEN:       # backward-stage order
                XY[r, ws] = lsum + dx + usum
            elif op == OP_FINAL_ODD:  # tail order
                XY[r, ws] = lsum + usum + dx
            else:
                raise ValueError(f"unknown blocked op {op!r}")
        elif sweep == "forward":
            ipl, c, v = self._tri(True, start, stop)
            XY, tmp, d = self.xy2, self.tmp, self.diag
            new_odd = tmp[r] + d[r] * XY[r, 0] \
                + reduce_rows(v * XY[c, 0], ipl)
            XY[r, 1] = new_odd
            tmp[r] = reduce_rows(v * XY[c, 1], ipl) + d[r] * new_odd
        elif sweep == "backward":
            ipl, c, v = self._tri(False, start, stop)
            XY, tmp = self.xy2, self.tmp
            XY[r, 0] = tmp[r] + reduce_rows(v * XY[c, 1], ipl)
            tmp[r] = reduce_rows(v * XY[c, 0], ipl)
        elif sweep == "forward_block":
            # The odd-slot product must be gathered AFTER the new odd
            # iterate is written: intra-block dependencies read values
            # step 1 of this very block produced (same two-step
            # discipline as the vector kernel above).
            ipl, c, v = self._tri(True, start, stop)
            XYB, TMPB, d = self.xyb, self.tmpb, self.diag
            dcol = d[r][:, None]
            new_odd = TMPB[r] + dcol * XYB[r, 0::2] \
                + _matmat_rows(v, c, ipl, XYB[:, 0::2])
            XYB[r, 1::2] = new_odd
            TMPB[r] = _matmat_rows(v, c, ipl, XYB[:, 1::2]) \
                + dcol * new_odd
        elif sweep == "backward_block":
            ipl, c, v = self._tri(False, start, stop)
            XYB, TMPB = self.xyb, self.tmpb
            XYB[r, 0::2] = TMPB[r] + _matmat_rows(v, c, ipl, XYB[:, 1::2])
            TMPB[r] = _matmat_rows(v, c, ipl, XYB[:, 0::2])
        else:  # pragma: no cover - dispatch validates sweeps
            raise ValueError(f"unknown sweep {sweep!r}")


class _AttachedSegments:
    """Worker-side attachment: maps the named segments read-only-cheap
    (same physical pages) and yields numpy views."""

    def __init__(self, spec: Dict[str, _SegmentSpec]) -> None:
        self._shms: List[shared_memory.SharedMemory] = []
        self._views: Dict[str, np.ndarray] = {}
        for tag, (name, dtype, shape) in spec.items():
            shm = shared_memory.SharedMemory(name=name)
            self._shms.append(shm)
            self._views[tag] = np.ndarray(shape, dtype=np.dtype(dtype),
                                          buffer=shm.buf)

    def view(self, tag: str) -> np.ndarray:
        return self._views[tag]

    def close(self) -> None:
        self._views.clear()
        for shm in self._shms:
            try:
                shm.close()
            except BufferError:
                pass
        self._shms.clear()


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------
def _worker_main(worker_id: int, core_spec: Dict[str, _SegmentSpec],
                 block_spec: Optional[Dict[str, _SegmentSpec]],
                 plan_specs: Dict[int, _SegmentSpec],
                 inq, outq, lock, event, task_hook, pin) -> None:
    """Worker loop: attach once, then serve ``(phase_idx, lo, hi)``
    dispatch triples until told to stop, claiming block descriptors
    from the shared plan tables via the chunked work-stealing cursor.
    Never touches a queue with array data — all arrays (including the
    descriptor tables) live in the mapped segments.

    The completion protocol is unconditional: ``wbusy``/``wdone`` are
    stamped and the barrier decremented in a ``finally``, so even an
    erroring worker closes the phase barrier; only a killed worker
    leaves ``remaining`` elevated, which the dispatcher's liveness scan
    compensates for."""
    _disable_shm_tracking()
    pin_worker(worker_id, pin)
    core = _AttachedSegments(core_spec)
    views = _Views(core.view)
    # The heartbeat slab rides in the core spec but is not a _Views tag:
    # it is watchdog bookkeeping, not sweep data.  CLOCK_MONOTONIC is
    # system-wide on the platforms with shared memory, so the parent can
    # compare these stamps against its own clock.
    hb = core.view("hb") if "hb" in core_spec else None
    ctrl = core.view("ctrl")
    wdone = core.view("wdone")
    wsteal = core.view("wsteal")
    wbusy = core.view("wbusy")
    cursor = SharedCursor(ctrl, lock)
    barrier = CompletionBarrier(ctrl, lock, event)
    # Span ring (same slab discipline): exec/wait spans written here are
    # merged into the dispatcher's trace after each barrier.  Recording
    # is gated on the descriptor carrying a trace tuple, so with
    # telemetry off the only cost per phase is one tuple unpack.
    ring = None
    if all(t in core_spec for t in ("sr_i", "sr_f", "sr_n")):
        ring = RingWriter(core.view("sr_i"), core.view("sr_f"),
                          core.view("sr_n"), worker_id)
    pid = os.getpid()
    t_idle0 = time.monotonic()
    blk: Optional[_AttachedSegments] = None
    plans: Dict[int, Tuple[_AttachedSegments, np.ndarray, np.ndarray,
                           Optional[np.ndarray]]] = {}

    def bind(spec: Optional[Dict[str, _SegmentSpec]]) -> None:
        nonlocal blk
        views.bind_block(None, None)
        if blk is not None:
            blk.close()
            blk = None
        if spec is not None:
            blk = _AttachedSegments(spec)
            views.bind_block(blk.view("xyb"), blk.view("tmpb"))

    def attach_plan(slot: int, spec: _SegmentSpec) -> None:
        seg = _AttachedSegments({"rows": spec})
        rows = seg.view("rows")
        # Row 2, when present, carries the per-descriptor op tags of a
        # levels-blocked plan.
        ops = rows[2] if rows.shape[0] > 2 else None
        plans[slot] = (seg, rows[0], rows[1], ops)

    for plan_slot, plan_spec in plan_specs.items():
        attach_plan(plan_slot, plan_spec)
    bind(block_spec)
    try:
        while True:
            msg = inq.get()
            if msg is None:
                break
            if msg[0] == "block":
                bind(msg[1])
                continue
            if msg[0] == "plan":
                attach_plan(msg[1], msg[2])
                continue
            # ("phase", sweep, plan, phase_index, color, lo, hi, epoch,
            #  chunk, trace) — one triple per worker per phase; trace is
            #  None (telemetry off) or (trace_id, parent_span_id).
            _, sweep, slot, pi, color, lo, hi, epoch, chunk, trace = msg
            _, starts, stops, ops = plans[slot]
            t_mono0 = time.monotonic()
            sweep_idx = SWEEPS.index(sweep) if sweep in SWEEPS else -1
            if ring is not None and trace is not None:
                # The gap since the previous phase finished: barrier
                # wait for the stragglers plus dispatch latency.
                ring.record(KIND_WAIT, pi, color, 0, trace[1], trace[0],
                            sweep_idx, pid, t_idle0, t_mono0 - t_idle0)
            t0 = time.perf_counter()
            claimed = 0
            start = stop = -1
            try:
                while True:
                    glo, gend = cursor.claim(hi, chunk)
                    if glo >= gend:
                        break
                    wsteal[worker_id] += 1
                    for g in range(glo, gend):
                        start, stop = int(starts[g]), int(stops[g])
                        if hb is not None:
                            hb[worker_id] = time.monotonic()
                        # Fires in the *worker* (injector inherited
                        # across fork): a HangFault here freezes this
                        # heartbeat while the parent stays live — the
                        # exact condition the watchdog exists to catch.
                        _fire_fault("procexec.heartbeat",
                                    worker=worker_id, phase_index=pi,
                                    color=color)
                        if task_hook is not None:
                            task_hook(sweep=sweep, phase_index=pi,
                                      color=color, start=start,
                                      stop=stop, worker=worker_id)
                        views.run(sweep, start, stop,
                                  -1 if ops is None else int(ops[g]))
                        claimed += 1
                if ring is not None and trace is not None and claimed:
                    # Written before the barrier arrival: the lock/event
                    # pair orders this record before the dispatcher's
                    # post-barrier drain.
                    ring.record(KIND_EXEC, pi, color, claimed,
                                trace[1], trace[0], sweep_idx, pid,
                                t_mono0, time.monotonic() - t_mono0)
            except BaseException as exc:  # noqa: BLE001 - forwarded
                try:  # only picklable causes may cross the boundary
                    pickle.dumps(exc)
                except Exception:
                    exc = RuntimeError(repr(exc))
                if ring is not None and trace is not None and claimed:
                    ring.record(KIND_EXEC, pi, color, claimed,
                                trace[1], trace[0], sweep_idx, pid,
                                t_mono0, time.monotonic() - t_mono0)
                # The error count crosses in shared memory (under the
                # lock, hence ordered before this worker's arrival);
                # the payload crosses on the queue.  The dispatcher
                # drains exactly ctrl[CTRL_ERRORS] messages after the
                # barrier closes.
                with lock:
                    ctrl[CTRL_ERRORS] += 1
                outq.put(("err", worker_id, pi, color, (start, stop),
                          exc))
            finally:
                wbusy[worker_id] += time.perf_counter() - t0
                wdone[worker_id] = epoch
                barrier.arrive()
                t_idle0 = time.monotonic()
    finally:
        for seg, _, _, _ in plans.values():
            seg.close()
        if blk is not None:
            blk.close()
        core.close()


def _picklable_hook_check(task_hook) -> None:
    if task_hook is None:
        return
    try:
        pickle.dumps(task_hook)
    except Exception as exc:
        raise ValueError(
            "task_hook must be picklable (module-level callable), got "
            f"{task_hook!r}") from exc


# ---------------------------------------------------------------------------
# the executor
# ---------------------------------------------------------------------------
@dataclass
class _PoolState:
    workers: List
    inqs: List
    outq: object
    lock: object
    event: object
    barrier: CompletionBarrier


class ProcessPhaseExecutor:
    """Persistent process pool running colour phases over shared memory.

    One barrier closes each phase, exactly as in the threaded executor;
    all operands live in a zero-copy :class:`SharedArena`.

    Parameters
    ----------
    part:
        The ``L + D + U`` :class:`~repro.core.partition.TriangularPartition`
        whose triangles, diagonal and working buffers are shared.
    n_workers, policy:
        Static-assignment parameters, identical in meaning to the
        threaded executor's (bins map one-to-one onto workers).
    on_failure:
        ``"raise"`` propagates a :class:`PhaseExecutionError`;
        ``"fallback_serial"`` (with a ``reset`` callback passed to
        :meth:`run_phases`) rolls back and re-runs the phases in the
        calling process — bit-identical to a clean serial run.
    hang_timeout:
        Seconds a dispatched worker may go without stamping its
        heartbeat before the watchdog SIGKILLs it (None — the default —
        disables the watchdog; barriers then wait indefinitely, the
        pre-watchdog behaviour).  A killed worker follows the ordinary
        dead-worker failure path, so ``fallback_serial`` still yields a
        correct answer.  SIGKILL is deliberate: it is the only signal a
        SIGSTOP'd process cannot ignore or defer.
    mp_context:
        Start method (default: ``"fork"`` where available, else
        ``"spawn"``).
    task_hook:
        Optional picklable callable invoked in the *worker* before every
        block task (test instrumentation / in-worker chaos); the
        standard ``"executor.task"`` chaos hook additionally fires in
        the parent at dispatch time.
    claim_chunk:
        Blocks a worker claims per cursor round-trip (None — the
        default — picks :func:`~repro.parallel.dispatch.default_claim_chunk`
        per phase).  The tuner searches this jointly with executor and
        block size.
    pin_workers:
        Deterministic CPU pinning for workers (``os.sched_setaffinity``,
        best-effort).  None (default) pins only when at least two CPUs
        are available; False never pins; True always tries.
    """

    def __init__(self, part, n_workers: Optional[int] = None,
                 policy: str = "lpt", on_failure: str = "raise",
                 mp_context: Optional[str] = None,
                 task_hook=None,
                 hang_timeout: Optional[float] = None,
                 claim_chunk: Optional[int] = None,
                 pin_workers: Optional[bool] = None) -> None:
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        if n_workers < 1:
            raise ValueError("n_workers must be positive")
        if on_failure not in ("raise", "fallback_serial"):
            raise ValueError(f"unknown on_failure policy {on_failure!r}")
        if hang_timeout is not None and hang_timeout <= 0:
            raise ValueError("hang_timeout must be positive (or None)")
        if claim_chunk is not None and claim_chunk < 1:
            raise ValueError("claim_chunk must be >= 1 (or None)")
        _picklable_hook_check(task_hook)
        self.n_workers = int(n_workers)
        self.policy = policy
        self.on_failure = on_failure
        self.task_hook = task_hook
        self.hang_timeout = None if hang_timeout is None \
            else float(hang_timeout)
        self.claim_chunk = None if claim_chunk is None else int(claim_chunk)
        self.pin_workers = pin_workers
        if mp_context is None:
            mp_context = ("fork" if "fork" in mp.get_all_start_methods()
                          else "spawn")
        self._ctx = mp.get_context(mp_context)
        self.n = int(part.diag.shape[0])
        self.arena = SharedArena()
        self.arena.add("l_indptr", part.lower.indptr)
        self.arena.add("l_indices", part.lower.indices)
        self.arena.add("l_data", part.lower.data)
        self.arena.add("u_indptr", part.upper.indptr)
        self.arena.add("u_indices", part.upper.indices)
        self.arena.add("u_data", part.upper.data)
        self.arena.add("diag", part.diag)
        self.arena.add("xy", np.zeros(2 * self.n, dtype=np.float64))
        self.arena.add("tmp", np.zeros(self.n, dtype=np.float64))
        # Heartbeat slab: workers stamp hb[i] = monotonic() per block;
        # the watchdog in _await_event compares against its own clock.
        self._hb = self.arena.add(
            "hb", np.zeros(self.n_workers, dtype=np.float64))
        # Dispatch control slab (cursor / remaining / epoch / errors)
        # plus per-worker completion-epoch, steal-count and busy-seconds
        # slabs — the shared state behind the batched claim/complete
        # protocol (see repro.parallel.dispatch).
        self._ctrl = self.arena.add(
            "ctrl", np.zeros(CTRL_SLOTS, dtype=np.int64))
        self._wdone = self.arena.add(
            "wdone", np.zeros(self.n_workers, dtype=np.int64))
        self._wsteal = self.arena.add(
            "wsteal", np.zeros(self.n_workers, dtype=np.int64))
        self._wbusy = self.arena.add(
            "wbusy", np.zeros(self.n_workers, dtype=np.float64))
        # Span rings: one single-writer ring per worker (see
        # repro.obs.spanring).  Plain int64/float64 arrays — the arena
        # spec round-trips dtype strings, which would mangle a
        # structured dtype.
        shp_i, shp_f, shp_n = ring_shapes(self.n_workers,
                                          DEFAULT_RING_CAPACITY)
        sr_i = self.arena.add("sr_i", np.zeros(shp_i, dtype=np.int64))
        sr_f = self.arena.add("sr_f", np.zeros(shp_f, dtype=np.float64))
        sr_n = self.arena.add("sr_n", np.zeros(shp_n, dtype=np.int64))
        self._ring_reader: Optional[RingReader] = RingReader(
            sr_i, sr_f, sr_n)
        self._views: Optional[_Views] = _Views(self.arena.view)
        self._pool: Optional[_PoolState] = None
        self._blk_m: Optional[int] = None
        # Registered descriptor plans: slot -> batch; the (2, n_blocks)
        # row table of plan `slot` lives in arena segment f"plan{slot}".
        self._plans: Dict[int, DescriptorBatch] = {}
        self._next_plan = 0
        # run_phases() compatibility cache: phases-list identity ->
        # (strong ref, slot).  The strong ref keeps id() from being
        # reused while the cache entry lives.
        self._compat_plans: Dict[int, Tuple[object, int]] = {}
        # Phase epoch: monotonically increasing across the executor's
        # lifetime (survives pool respawns) so wdone stamps from a
        # previous pool can never satisfy the current phase's scan.
        self._epoch = 0

    # -- shared buffers -------------------------------------------------
    @property
    def xy(self) -> np.ndarray:
        """The shared length-``2n`` BtB iterate buffer."""
        return self.arena.view("xy")

    @property
    def tmp(self) -> np.ndarray:
        """The shared length-``n`` sweep temporary."""
        return self.arena.view("tmp")

    def ensure_block(self, m: int) -> Tuple[np.ndarray, np.ndarray]:
        """The shared block buffers for ``power_block`` with ``m``
        columns: the ``(n, 2m)`` interleaved iterate block and the
        ``(n, m)`` temporary.  (Re)allocated only when ``m`` changes;
        running workers are rebound in-band, so descriptor ordering
        guarantees they never touch a stale segment."""
        if m < 0:
            raise ValueError("m must be non-negative")
        if self._blk_m != m:
            self.arena.drop(("xyb", "tmpb"))
            xyb = self.arena.add(
                "xyb", np.zeros((self.n, 2 * m), dtype=np.float64))
            tmpb = self.arena.add(
                "tmpb", np.zeros((self.n, m), dtype=np.float64))
            self._views.bind_block(xyb, tmpb)
            self._blk_m = m
            if self._pool is not None:
                spec = self._block_spec()
                for q in self._pool.inqs:
                    q.put(("block", spec))
        return self._views.xyb, self._views.tmpb

    def _block_spec(self) -> Optional[Dict[str, _SegmentSpec]]:
        if self._blk_m is None:
            return None
        return {t: self.arena.spec[t] for t in ("xyb", "tmpb")}

    # -- lifecycle ------------------------------------------------------
    def _ensure_pool(self) -> _PoolState:
        if self._pool is None:
            core = {t: self.arena.spec[t]
                    for t in _Views.CORE_TAGS
                    + ("hb", "sr_i", "sr_f", "sr_n",
                       "ctrl", "wdone", "wsteal", "wbusy")}
            outq = self._ctx.Queue()
            inqs = [self._ctx.SimpleQueue()
                    for _ in range(self.n_workers)]
            # Fresh lock + event per pool generation: a worker killed
            # inside the critical section poisons the lock, and pool
            # teardown is exactly what replaces it.
            lock = self._ctx.Lock()
            event = self._ctx.Event()
            plan_specs = {slot: self.arena.spec[f"plan{slot}"]
                          for slot in self._plans}
            workers = []
            for i in range(self.n_workers):
                w = self._ctx.Process(
                    target=_worker_main,
                    args=(i, core, self._block_spec(), plan_specs,
                          inqs[i], outq, lock, event, self.task_hook,
                          self.pin_workers),
                    name=f"fbmpk-proc-{i}", daemon=True)
                w.start()
                workers.append(w)
            self._pool = _PoolState(
                workers=workers, inqs=inqs, outq=outq, lock=lock,
                event=event,
                barrier=CompletionBarrier(self._ctrl, lock, event))
            obs.add_counter("procexec.pool_spawns")
        return self._pool

    def start(self) -> List[int]:
        """Spawn the pool eagerly; returns the worker PIDs (used by the
        fault-injection tests to SIGKILL a live worker)."""
        pool = self._ensure_pool()
        return [w.pid for w in pool.workers]

    def worker_liveness(self) -> Optional[List[bool]]:
        """Per-worker liveness snapshot for health endpoints: None when
        no pool is running, else one bool per worker slot."""
        pool = self._pool
        if pool is None:
            return None
        return [w.is_alive() for w in pool.workers]

    def heartbeat_ages(self) -> Optional[List[Optional[float]]]:
        """Seconds since each worker last stamped its heartbeat slab
        (None per slot when the worker has never stamped; None overall
        when no pool is running).  Usable without a hang_timeout — the
        slab is stamped unconditionally."""
        if self._pool is None or self._hb is None:
            return None
        now = time.monotonic()
        return [now - float(t) if t > 0 else None for t in self._hb]

    def publish_metrics(self) -> None:
        """Push pool-liveness gauges into the active telemetry session
        (no-op when telemetry is off): ``procexec.workers_alive`` and a
        ``procexec.heartbeat_age_s.w<i>`` gauge per worker, so ``/metrics``
        scrapes see what previously only the ``health`` op reported."""
        if obs.current() is None:
            return
        alive = self.worker_liveness()
        if alive is not None:
            obs.set_gauge("procexec.workers_alive", float(sum(alive)))
        ages = self.heartbeat_ages()
        if ages is not None:
            for i, age in enumerate(ages):
                if age is not None:
                    obs.set_gauge(f"procexec.heartbeat_age_s.w{i}",
                                  age, unit="s")

    def _shutdown_pool(self) -> None:
        """Stop every worker and discard the queues (idempotent).  The
        arena survives — a later dispatch respawns the pool over the
        same segments.

        Escalation ladder so shutdown can never hang on a stuck worker:
        sentinel + 2 s cooperative join, then ``terminate()`` (SIGTERM)
        + 2 s, then ``kill()`` (SIGKILL, which even a SIGSTOP'd process
        cannot survive) + final join to reap."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for w, q in zip(pool.workers, pool.inqs):
            if w.is_alive():
                try:
                    q.put(None)
                except (OSError, ValueError):
                    pass
        for w in pool.workers:
            w.join(timeout=2.0)
        for w in pool.workers:
            if w.is_alive():
                w.terminate()
                w.join(timeout=2.0)
        for w in pool.workers:
            if w.is_alive():
                obs.add_counter("procexec.shutdown_kills")
                w.kill()
                w.join(timeout=2.0)
        for q in pool.inqs:
            q.close()
        pool.outq.close()

    def close(self) -> None:
        """Shut the pool down and unlink every shared segment
        (idempotent).  Buffers obtained from :attr:`xy`/:attr:`tmp`/
        :meth:`ensure_block` must not be used afterwards.  The arena is
        unlinked even if pool teardown raises — ``/dev/shm`` hygiene
        must not depend on worker cooperation."""
        try:
            self._shutdown_pool()
        finally:
            self._views = None
            self._hb = None
            self._ctrl = None
            self._wdone = None
            self._wsteal = None
            self._wbusy = None
            self._ring_reader = None
            self._blk_m = None
            self._plans.clear()
            self._compat_plans.clear()
            self.arena.close()

    def __enter__(self) -> "ProcessPhaseExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution ------------------------------------------------------
    def run_serial(self, phases: Sequence[Phase], sweep: str,
                   stats: Optional[ExecutionStats] = None
                   ) -> ExecutionStats:
        """Execute ``phases`` in the calling process, tasks in declared
        order, over the same shared buffers — the reference the
        dispatched path must be bit-identical to, and the
        ``fallback_serial`` target.  Busy time accrues to bin 0."""
        if sweep not in SWEEPS:
            raise ValueError(f"unknown sweep {sweep!r}")
        if stats is None:
            stats = ExecutionStats(n_threads=self.n_workers,
                                   policy=self.policy)
        views = self._views
        for pi, phase in enumerate(phases):
            with obs.span("executor.phase", phase=pi, colour=phase.color,
                          n_tasks=len(phase.tasks), nnz=phase.total_nnz,
                          mode="serial"):
                t0 = time.perf_counter()
                for task in phase.tasks:
                    views.run(sweep, task.start, task.stop)
                elapsed = time.perf_counter() - t0
            stats.thread_busy_s[0] += elapsed
            self._finish_phase(stats, phase.color, len(phase.tasks),
                               phase.total_nnz, elapsed)
        return stats

    def run_serial_batch(self, batch: DescriptorBatch, sweep: str,
                         stats: Optional[ExecutionStats] = None
                         ) -> ExecutionStats:
        """Execute a descriptor batch in the calling process, descriptors
        in batch order, forwarding per-descriptor op tags — the
        reference (and ``fallback_serial`` target) for plans whose
        legacy ``Phase`` list is absent, e.g. levels-blocked batches."""
        if sweep not in SWEEPS:
            raise ValueError(f"unknown sweep {sweep!r}")
        if stats is None:
            stats = ExecutionStats(n_threads=self.n_workers,
                                   policy=self.policy)
        views = self._views
        ops = batch.ops
        for pi in range(batch.n_phases):
            lo, hi = batch.phase_range(pi)
            color = batch.phase_color(pi)
            nnz = batch.phase_nnz(pi)
            with obs.span("executor.phase", phase=pi, colour=color,
                          n_tasks=hi - lo, nnz=nnz, mode="serial"):
                t0 = time.perf_counter()
                for g in range(lo, hi):
                    views.run(sweep, int(batch.starts[g]),
                              int(batch.stops[g]),
                              -1 if ops is None else int(ops[g]))
                elapsed = time.perf_counter() - t0
            stats.thread_busy_s[0] += elapsed
            self._finish_phase(stats, color, hi - lo, nnz, elapsed)
        return stats

    def register_phases(self, phases: Sequence[Phase]) -> int:
        """Pack ``phases`` into a descriptor plan, place its row table
        in the arena, and return the plan slot for :meth:`run_batched`.
        Registration is the one-time cost that buys one-enqueue-per-
        phase-per-worker dispatch on every subsequent sweep."""
        return self.register_batch(
            DescriptorBatch.from_phases(phases, self.policy))

    def register_batch(self, batch: DescriptorBatch) -> int:
        """Place an already-packed descriptor batch in the arena (its
        row table gains the op-tag row when the batch carries one) and
        return the plan slot for :meth:`run_batched`."""
        slot = self._next_plan
        self._next_plan += 1
        self.arena.add(f"plan{slot}", batch.pack_rows())
        self._plans[slot] = batch
        if self._pool is not None:
            spec = self.arena.spec[f"plan{slot}"]
            for q in self._pool.inqs:
                q.put(("plan", slot, spec))
        return slot

    def _slot_for(self, phases: Sequence[Phase]) -> int:
        """Plan slot for a phases list, registering on first sight.
        Keyed by list identity with a strong reference held, so repeated
        sweeps over the same schedule (the FBMPK hot loop) register
        exactly once and id() reuse cannot alias."""
        key = id(phases)
        hit = self._compat_plans.get(key)
        if hit is not None and hit[0] is phases:
            return hit[1]
        slot = self.register_phases(phases)
        if len(self._compat_plans) >= 8:
            self._compat_plans.clear()
        self._compat_plans[key] = (phases, slot)
        return slot

    def run_phases(self, phases: Sequence[Phase], sweep: str,
                   stats: Optional[ExecutionStats] = None,
                   reset: Optional[Callable[[], None]] = None
                   ) -> ExecutionStats:
        """Execute ``phases`` on the worker pool (compatibility entry
        point: registers the schedule as a descriptor plan on first
        sight, then runs the batched path)."""
        if sweep not in SWEEPS:
            raise ValueError(f"unknown sweep {sweep!r}")
        return self.run_batched(self._slot_for(phases), sweep,
                                stats=stats, reset=reset)

    def run_batched(self, plan: int, sweep: str,
                    stats: Optional[ExecutionStats] = None,
                    reset: Optional[Callable[[], None]] = None
                    ) -> ExecutionStats:
        """Execute a registered descriptor plan on the worker pool: one
        enqueue per phase per worker, workers claim blocks via the
        shared cursor, and the atomic completion counter closes each
        phase.

        ``reset`` is the rollback hook of ``on_failure=
        "fallback_serial"``: on any failure (worker exception, injected
        dispatch fault, a killed worker, or a poisoned claim lock) the
        barrier is compensated closed, the pool is torn down, ``reset``
        restores the shared buffers, and :meth:`run_serial` re-runs
        everything in-process.
        """
        if sweep not in SWEEPS:
            raise ValueError(f"unknown sweep {sweep!r}")
        batch = self._plans[plan]
        if stats is None:
            stats = ExecutionStats(n_threads=self.n_workers,
                                   policy=self.policy)
        snap = (len(stats.phases), stats.barriers,
                list(stats.thread_busy_s), stats.enqueues, stats.steals)
        pool = self._ensure_pool()
        tel = obs.current()
        for pi in range(batch.n_phases):
            lo, hi = batch.phase_range(pi)
            color = batch.phase_color(pi)
            nnz = batch.phase_nnz(pi)
            with obs.span("executor.phase", phase=pi, colour=color,
                          n_tasks=hi - lo, nnz=nnz,
                          mode="processes") as sp:
                # Trace context shipped with the descriptors: workers
                # stamp their ring spans with the dispatcher's trace id
                # and parent this very executor.phase span.
                trace = None if tel is None \
                    else (tel.recorder.trace_id, sp.span_id)
                t0 = time.perf_counter()
                failure = None if hi == lo else self._dispatch_batch(
                    pool, plan, sweep, pi, color, lo, hi, stats, trace)
                elapsed = time.perf_counter() - t0
            if failure is not None:
                self._drain_spans()
                self._shutdown_pool()
                obs.add_counter("executor.failed_phases")
                if self.on_failure == "fallback_serial" \
                        and reset is not None:
                    stats.phases[:] = stats.phases[:snap[0]]
                    stats.barriers = snap[1]
                    stats.thread_busy_s[:] = snap[2]
                    stats.enqueues = snap[3]
                    stats.steals = snap[4]
                    reset()
                    if batch.ops is not None or not batch.phases:
                        return self.run_serial_batch(batch, sweep, stats)
                    return self.run_serial(batch.phases, sweep, stats)
                raise failure
            self._finish_phase(stats, color, hi - lo, nnz, elapsed)
        self._drain_spans()
        self.publish_metrics()
        return stats

    def _drain_spans(self) -> None:
        """Merge worker span-ring records into the active recorder.

        Runs after the barrier has closed, so every record for the
        phases just executed is visible (workers write their ring record
        before arriving at the completion barrier).  Counts surface as
        ``procexec.spans_merged`` / ``procexec.spans_dropped``."""
        tel = obs.current()
        if tel is None or self._ring_reader is None:
            return
        merged, dropped = self._ring_reader.drain(tel.recorder,
                                                  sweep_names=SWEEPS)
        if merged:
            obs.add_counter("procexec.spans_merged", merged)
        if dropped:
            obs.add_counter("procexec.spans_dropped", dropped)

    def _dispatch_batch(self, pool: _PoolState, plan: int, sweep: str,
                        pi: int, color: int, lo: int, hi: int,
                        stats: ExecutionStats,
                        trace: Optional[Tuple[int, int]] = None
                        ) -> Optional[PhaseExecutionError]:
        """Arm the cursor/barrier for phase ``pi`` and send one
        ``(phase_idx, lo, hi)`` descriptor triple to every worker — the
        entire per-phase message traffic.  Returns the first failure
        (never raises before the barrier has closed or been compensated
        closed)."""
        batch = self._plans[plan]
        # The "executor.task" chaos hook still fires in the parent per
        # block (the fault suite depends on that injection point), but
        # only while an injector is active — the hot path pays one list
        # check.
        if _active_injectors():
            fault_s = 0.0
            start = stop = None
            try:
                for g in range(lo, hi):
                    start = int(batch.starts[g])
                    stop = int(batch.stops[g])
                    fault_s += _fire_fault_timed(
                        "executor.task", phase_index=pi, color=color,
                        start=start, stop=stop,
                        thread=int((g - lo) % self.n_workers))
            except BaseException as exc:  # injected dispatch fault
                failure = PhaseExecutionError(
                    f"injected fault at dispatch: {exc!r}",
                    phase_index=pi, color=color,
                    block=None if start is None else (start, stop),
                    thread=int((g - lo) % self.n_workers))
                failure.__cause__ = exc
                return failure  # nothing dispatched
            if fault_s:
                obs.add_counter("faults.injected_delay_s", fault_s,
                                unit="s")
        self._epoch += 1
        epoch = self._epoch
        if not self._arm_phase(pool, lo, epoch):
            return PhaseExecutionError(
                "phase barrier poisoned: claim lock held by a dead "
                "worker", phase_index=pi, color=color)
        chunk = self.claim_chunk if self.claim_chunk is not None \
            else default_claim_chunk(hi - lo, self.n_workers)
        busy0 = self._wbusy.copy()
        steal0 = int(self._wsteal.sum())
        for q in pool.inqs:
            q.put(("phase", sweep, plan, pi, color, lo, hi, epoch,
                   chunk, trace))
        stats.enqueues += self.n_workers
        obs.add_counter("procexec.enqueues", self.n_workers)
        failure = self._await_event(pool, pi, color, epoch)
        busy = self._wbusy - busy0
        for i in range(self.n_workers):
            stats.thread_busy_s[i] += float(busy[i])
        steals = int(self._wsteal.sum()) - steal0
        stats.steals += steals
        if steals:
            obs.add_counter("procexec.steal_count", steals)
        return failure

    def _arm_phase(self, pool: _PoolState, lo: int, epoch: int) -> bool:
        """Reset the shared cursor and arm the completion barrier for
        one phase.  Bounded acquisition: False means the claim lock is
        poisoned and the caller must tear the pool down."""
        if not pool.lock.acquire(timeout=2.0):
            return False
        try:
            self._ctrl[CTRL_CURSOR] = int(lo)
            self._ctrl[CTRL_REMAINING] = self.n_workers
            self._ctrl[CTRL_ERRORS] = 0
            self._ctrl[CTRL_EPOCH] = int(epoch)
        finally:
            pool.lock.release()
        pool.event.clear()
        return True

    def _await_event(self, pool: _PoolState, pi: int, color: int,
                     epoch: int) -> Optional[PhaseExecutionError]:
        """Wait for the completion event — the phase barrier — scanning
        worker liveness/heartbeats between bounded waits, then drain
        exactly ``ctrl[CTRL_ERRORS]`` error payloads off the queue."""
        failure: Optional[PhaseExecutionError] = None
        poisoned = False
        t_dispatch = time.monotonic()
        handled: set = set()
        while True:
            if pool.event.wait(0.2):
                break
            failure, poisoned = self._scan_batch(
                pool, epoch, pi, color, t_dispatch, time.monotonic(),
                failure, handled)
            if poisoned:
                break
        wait_s = time.monotonic() - t_dispatch
        if obs.current() is not None:
            # dispatch_wait is the new name; barrier_wait is kept so
            # existing dashboards and the cross-process trace tests keep
            # seeing the per-phase barrier cost.
            obs.observe("procexec.dispatch_wait", wait_s, unit="s")
            obs.observe("procexec.barrier_wait", wait_s, unit="s")
        nerr = int(self._ctrl[CTRL_ERRORS])
        for _ in range(nerr):
            try:
                msg = pool.outq.get(timeout=2.0)
            except _queue.Empty:
                break
            _, slot, epi, ecolor, block, exc = msg
            if failure is None:
                failure = PhaseExecutionError(
                    f"block task crashed in worker {slot}: {exc!r}",
                    phase_index=epi, color=ecolor, block=block,
                    thread=slot)
                failure.__cause__ = exc
        if poisoned and failure is None:
            failure = PhaseExecutionError(
                "phase barrier poisoned: claim lock held by a dead "
                "worker", phase_index=pi, color=color)
        return failure

    def _scan_batch(self, pool: _PoolState, epoch: int, pi: int,
                    color: int, t_dispatch: float, now: float,
                    failure: Optional[PhaseExecutionError],
                    handled: set
                    ) -> Tuple[Optional[PhaseExecutionError], bool]:
        """One watchdog pass over workers that have not completed this
        epoch: collect dead workers (arriving at the barrier on their
        behalf so it still closes) and — when a ``hang_timeout`` is
        armed — SIGKILL any alive worker whose heartbeat has not moved
        since dispatch.  Returns (failure, lock_poisoned)."""
        poisoned = False
        for i in range(self.n_workers):
            if i in handled or int(self._wdone[i]) >= epoch:
                continue
            w = pool.workers[i]
            if not w.is_alive():
                handled.add(i)
                if failure is None:
                    failure = PhaseExecutionError(
                        f"worker {i} died before completing its share "
                        f"(exitcode {w.exitcode})",
                        phase_index=pi, color=color, thread=i)
                # Arrive on the dead worker's behalf so the last live
                # arrival still flips the event.  A bounded acquire:
                # the worker may have died holding the lock.
                if not pool.barrier.arrive(timeout=2.0):
                    poisoned = True
                continue
            if self.hang_timeout is None:
                continue
            # max() with t_dispatch: a worker that never reached its
            # first stamp (hung in queue pickup, heartbeat still at a
            # previous phase's value or 0) is measured from dispatch.
            silent_s = now - max(float(self._hb[i]), t_dispatch)
            if silent_s <= self.hang_timeout:
                continue
            w.kill()  # SIGKILL: the only signal a SIGSTOP'd worker obeys
            w.join(timeout=2.0)
            handled.add(i)
            obs.add_counter("procexec.watchdog_kills")
            if failure is None:
                failure = PhaseExecutionError(
                    f"watchdog killed worker {i}: no heartbeat for "
                    f"{silent_s:.2f}s (hang_timeout={self.hang_timeout}s)",
                    phase_index=pi, color=color, thread=i)
            if not pool.barrier.arrive(timeout=2.0):
                poisoned = True
        return failure, poisoned

    @staticmethod
    def _finish_phase(stats: ExecutionStats, color: int, n_tasks: int,
                      nnz: int, wall_s: float) -> None:
        stats.barriers += 1
        stats.phases.append(PhaseRecord(
            color=color, n_tasks=n_tasks, nnz=nnz, wall_s=wall_s))
        if obs.current() is None:
            return
        obs.add_counter("executor.barriers")
        obs.add_counter("executor.tasks", n_tasks)
        obs.add_counter("executor.phase_nnz", nnz)
        obs.observe("executor.phase_wall_s", wall_s, unit="s")
