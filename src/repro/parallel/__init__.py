"""Parallel execution: colour-phase scheduling, simulated and real threads.

Three layers (see DESIGN.md "Execution backends"):

* :mod:`~repro.parallel.scheduler` — turns orderings into the
  phase/task structure of Section III-E (blocks "allocated in advance");
* :mod:`~repro.parallel.simthread` — deterministic makespan *simulator*
  for scalability studies beyond this host's core count (Fig 12);
* :mod:`~repro.parallel.executor` — a real
  :class:`~concurrent.futures.ThreadPoolExecutor` backend that actually
  runs each phase's blocks concurrently with one barrier per colour;
* :mod:`~repro.parallel.procexec` — a persistent *process* pool over
  :mod:`multiprocessing.shared_memory` (zero-copy matrix and iterate
  segments, descriptor-only dispatch) for the small-block regime where
  CPython's GIL serialises the thread backend;
* :mod:`~repro.parallel.dispatch` — the batched descriptor-array plan
  representation both real backends execute: one enqueue per phase per
  worker, chunked work-stealing claims, and an atomic completion
  counter in place of per-block acknowledgements.
"""

from .dispatch import (
    CompletionBarrier,
    DescriptorBatch,
    SharedCursor,
    ThreadCursor,
    default_claim_chunk,
    pin_worker,
)
from .executor import (
    ExecutionStats,
    PhaseExecutionError,
    PhaseRecord,
    ThreadedPhaseExecutor,
    check_phases,
)
from .procexec import ProcessPhaseExecutor, SharedArena
from .scheduler import (
    BlockTask,
    Phase,
    assign_tasks,
    build_phases,
    phases_from_groups,
)
from .simthread import SimulatedRun, block_cost_model, simulate_phases

__all__ = [
    "BlockTask",
    "Phase",
    "assign_tasks",
    "build_phases",
    "phases_from_groups",
    "SimulatedRun",
    "block_cost_model",
    "simulate_phases",
    "ExecutionStats",
    "PhaseExecutionError",
    "PhaseRecord",
    "ThreadedPhaseExecutor",
    "check_phases",
    "ProcessPhaseExecutor",
    "SharedArena",
    "DescriptorBatch",
    "ThreadCursor",
    "SharedCursor",
    "CompletionBarrier",
    "default_claim_chunk",
    "pin_worker",
]
