"""Parallel execution: colour-phase scheduling and simulated threading.

The substitute for the paper's OpenMP runs (see DESIGN.md): block tasks
are scheduled exactly as Section III-E describes, and a deterministic
simulator computes the makespan a ``T``-thread execution would achieve.
"""

from .scheduler import BlockTask, Phase, assign_tasks, build_phases
from .simthread import SimulatedRun, block_cost_model, simulate_phases

__all__ = [
    "BlockTask",
    "Phase",
    "assign_tasks",
    "build_phases",
    "SimulatedRun",
    "block_cost_model",
    "simulate_phases",
]
