"""Command-line interface: ``python -m repro <command>``.

A user-facing front end over the library:

``info``
    Structural statistics of a matrix (MatrixMarket file or a named
    Table II stand-in).
``power``
    Compute ``A^k x`` with a chosen pipeline; reports result checksum,
    wall time and (for FBMPK) the instrumented matrix-pass counts.
``preprocess``
    Run the one-off FBMPK preprocessing and save the operator artefact
    (``.npz``) for later ``power --operator`` runs — the paper's
    offline-preprocessing workflow.
``reorder``
    Apply ABMC or RCM to a MatrixMarket file and write the result.
``predict``
    Machine-model predictions (Fig 7/8-style) for a Table II matrix
    across the Table I platforms, with an ASCII chart.
``solve``
    Run CG/BiCGSTAB/GMRES on a matrix and report the structured
    convergence status.
``tune``
    OSKI-style empirical autotuning: time the candidate execution plans
    on the actual matrix, pick the fastest bit-identical one, and
    persist it in the plan cache (``~/.cache/repro/plans`` or
    ``--plan-cache-dir``/``$REPRO_PLAN_CACHE_DIR``) so later runs —
    including ``power --tuned`` and ``solve --tuned`` — skip the search.
``report``
    Validate and pretty-print a RunReport produced by ``--report``, or
    diff two of them.
``serve``
    Run the multi-tenant solve service: newline-delimited JSON over
    TCP, resident autotuned operators keyed by structure, and a
    gather-window batching queue that stacks concurrent requests for
    the same ``(matrix, k)`` into one multi-RHS sweep (see
    :mod:`repro.serve`).  ``tools/serve_client.py`` is the matching
    client.

Telemetry: the run commands accept ``--trace FILE`` (Chrome trace-event
JSON of the run's spans), ``--metrics FILE`` (metrics snapshot),
``--report FILE`` (schema-versioned RunReport) and ``--profile FILE``
(flamegraph-collapsed sampling profile at ``--profile-hz``); any of
them activates a :class:`repro.obs.Telemetry` session around the
command, as does ``serve --metrics-port`` (live Prometheus exposition
for the server's lifetime).

Failures map onto one-line ``error:`` messages and distinct exit codes
(see ``EXIT_*``): 3 for unreadable/malformed input files, 4 for
validation and non-finite failures, 5 for crashed parallel phases, 6
for solver breakdown/divergence/non-convergence, 7 for telemetry-export
I/O failures (an unwritable ``--trace``/``--metrics``/``--report``
path), 8 for a blown deadline/budget
(:class:`~repro.robust.errors.DeadlineExceededError`).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time

import numpy as np

from . import obs
from .baselines import ExplicitPowerMPK, LevelBlockedMPK, MklLikeMPK
from .bench.ascii_plot import line_chart
from .bench.harness import format_table
from .core import KernelCounter, build_fbmpk_operator, mpk_standard
from .core.fbmpk import FBMPKOperator
from .machine import PLATFORMS, predict_speedup
from .matrices import generate_standin, get_matrix_info, list_matrix_names
from .matrices.stats import analyze_matrix
from .reorder import abmc_ordering, permute_symmetric, rcm_ordering
from .robust import (
    DeadlineExceededError,
    MatrixMarketError,
    PhaseExecutionError,
    ValidationError,
    validate_csr,
)
from .solvers import bicgstab, conjugate_gradient, gmres
from .sparse import CSRMatrix, read_matrix_market, write_matrix_market

__all__ = ["main", "EXIT_OK", "EXIT_IO", "EXIT_VALIDATION",
           "EXIT_EXECUTION", "EXIT_SOLVER", "EXIT_TELEMETRY",
           "EXIT_DEADLINE"]

#: Exit codes of the typed-error mapping (argparse keeps 2 for usage).
EXIT_OK = 0
EXIT_IO = 3
EXIT_VALIDATION = 4
EXIT_EXECUTION = 5
EXIT_SOLVER = 6
EXIT_TELEMETRY = 7
EXIT_DEADLINE = 8


def _load_matrix(args) -> CSRMatrix:
    if getattr(args, "standin", None):
        a = generate_standin(args.standin, n_rows=args.rows)
    elif getattr(args, "matrix", None):
        a = read_matrix_market(args.matrix).to_csr()
    else:
        raise SystemExit("provide a MatrixMarket file or --standin NAME")
    if getattr(args, "validate", False):
        name = args.matrix or f"{args.standin} stand-in"
        report = validate_csr(a, name=str(name))
        for issue in report.warnings:
            print(f"warning[{issue.code}]: {issue.message}",
                  file=sys.stderr)
        report.raise_if_failed()
    return a


def _add_matrix_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("matrix", nargs="?", help="MatrixMarket file")
    p.add_argument("--standin", choices=list_matrix_names(),
                   help="generate a Table II stand-in instead of reading "
                        "a file")
    p.add_argument("--rows", type=int, default=20_000,
                   help="stand-in size (rows)")
    p.add_argument("--validate", action="store_true",
                   help="run the structural validators on the loaded "
                        "matrix (exit 4 on failure)")


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", metavar="FILE",
                   help="write the run's spans as Chrome trace-event "
                        "JSON (load in chrome://tracing or Perfetto)")
    p.add_argument("--metrics", metavar="FILE",
                   help="write the run's metrics snapshot as JSON")
    p.add_argument("--report", metavar="FILE",
                   help="write a schema-versioned RunReport (validate "
                        "with tools/check_report.py, inspect with the "
                        "report subcommand)")
    p.add_argument("--profile", metavar="FILE",
                   help="sample all thread stacks for the whole run "
                        "and write flamegraph-collapsed stacks "
                        "(feed to flamegraph.pl or speedscope)")
    p.add_argument("--profile-hz", type=float, default=100.0,
                   help="sampling rate for --profile (default 100)")


def _export_telemetry(tel: "obs.Telemetry", args) -> None:
    """Write the requested telemetry artefacts (``OSError`` escapes to
    the exit-code-7 handler in :func:`main`)."""
    if getattr(args, "trace", None):
        tel.write_trace(args.trace)
        print(f"trace written to {args.trace}", file=sys.stderr)
    if getattr(args, "metrics", None):
        tel.write_metrics(args.metrics)
        print(f"metrics written to {args.metrics}", file=sys.stderr)
    if getattr(args, "report", None):
        config = {k: v for k, v in vars(args).items()
                  if k not in ("func", "command", "trace", "metrics",
                               "report") and v is not None}
        report = tel.run_report(command=args.command, config=config)
        obs.write_report_file(report, args.report)
        print(f"run report written to {args.report}", file=sys.stderr)


def cmd_info(args) -> int:
    a = _load_matrix(args)
    report = analyze_matrix(a)
    rows = [[key, str(val)] for key, val in report.as_dict().items()]
    print(format_table(["statistic", "value"], rows,
                       title=f"matrix statistics"
                             f"{' (' + args.standin + ' stand-in)' if args.standin else ''}"))
    return 0


def cmd_power(args) -> int:
    counter = None
    if getattr(args, "workers", None) is not None:
        args.threads = args.workers
    pin_workers = {"auto": None, "on": True, "off": False}[
        getattr(args, "pin_workers", "auto")]
    claim_chunk = getattr(args, "claim_chunk", None)
    if args.operator:
        op = FBMPKOperator.load(args.operator, backend=args.backend)
        n = op.n
        a = None
    else:
        a = _load_matrix(args)
        n = a.n_rows
    x = (np.ones(n) if args.ones
         else np.random.default_rng(args.seed).standard_normal(n))
    t0 = time.perf_counter()
    if args.operator or args.method == "fbmpk":
        if args.operator:
            op.configure_executor(executor=args.executor,
                                  n_threads=args.threads,
                                  assign_policy=args.policy,
                                  on_failure=args.on_failure,
                                  claim_chunk=claim_chunk,
                                  pin_workers=pin_workers)
        elif getattr(args, "tuned", False):
            from . import tune

            op, tres = tune.autotune_power(
                a, k=args.k, cache=args.plan_cache_dir)
            print(f"tuned plan: {tres.plan.label} "
                  f"(source: {tres.source})", file=sys.stderr)
        else:
            op = build_fbmpk_operator(a, strategy=args.strategy,
                                      block_size=args.block_size,
                                      backend=args.backend,
                                      executor=args.executor,
                                      n_threads=args.threads,
                                      assign_policy=args.policy,
                                      on_failure=args.on_failure,
                                      claim_chunk=claim_chunk,
                                      pin_workers=pin_workers)
        counter = KernelCounter()
        y = op.power(x, args.k, counter=counter,
                     check_finite=args.check_finite)
    elif args.method == "standard":
        y = mpk_standard(a, x, args.k)
    elif args.method == "mkl":
        y = MklLikeMPK(a).power(x, args.k)
    elif args.method == "lbmpk":
        y = LevelBlockedMPK(a).power(x, args.k)
    elif args.method == "explicit":
        y = ExplicitPowerMPK(a).power(x, args.k)
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown method {args.method}")
    elapsed = time.perf_counter() - t0
    print(f"method={args.method} k={args.k} n={n}")
    print(f"time (incl. preprocessing unless --operator): {elapsed:.3f}s")
    print(f"||y||_2 = {np.linalg.norm(y):.12e}   "
          f"checksum = {float(y.sum()):.12e}")
    if counter is not None:
        print(f"matrix passes: L x{counter.l_passes}, U x{counter.u_passes} "
              f"(standard MPK would stream A x{args.k})")
        stats = getattr(op, "last_stats", None)
        if stats is not None:
            print(f"executor={op.executor} n_workers={stats.n_threads} "
                  f"policy={stats.policy}: {stats.barriers} barriers, "
                  f"{stats.enqueues} enqueues, {stats.steals} steals, "
                  f"phase wall {stats.total_wall_s * 1e3:.2f} ms, "
                  f"busy {stats.busy_s * 1e3:.2f} ms, "
                  f"efficiency {stats.efficiency:.1%}")
            slowest = max(stats.phases, key=lambda p: p.wall_s)
            print(f"slowest phase: colour {slowest.color} "
                  f"({slowest.n_tasks} blocks, {slowest.nnz} nnz, "
                  f"{slowest.wall_s * 1e3:.2f} ms)")
        op.close()
    return 0


def cmd_preprocess(args) -> int:
    a = _load_matrix(args)
    t0 = time.perf_counter()
    op = build_fbmpk_operator(a, strategy=args.strategy,
                              block_size=args.block_size)
    elapsed = time.perf_counter() - t0
    op.save(args.output)
    print(f"preprocessed {a.n_rows} rows / {a.nnz} nnz in {elapsed:.2f}s "
          f"({op.groups.n_forward} forward groups, "
          f"strategy={args.strategy}); saved to {args.output}")
    return 0


def cmd_reorder(args) -> int:
    a = _load_matrix(args)
    if args.method == "abmc":
        perm = abmc_ordering(a, block_size=args.block_size).perm
    else:
        perm = rcm_ordering(a)
    b = permute_symmetric(a, perm)
    write_matrix_market(b, args.output,
                        comment=f"{args.method}-reordered by repro")
    from .reorder.rcm import matrix_bandwidth

    print(f"{args.method}: bandwidth {matrix_bandwidth(a)} -> "
          f"{matrix_bandwidth(b)}; written to {args.output}")
    return 0


def cmd_solve(args) -> int:
    a = _load_matrix(args)
    rng = np.random.default_rng(args.seed)
    x_true = rng.standard_normal(a.n_rows)
    b = a.matvec(x_true)
    t0 = time.perf_counter()
    if args.solver == "cg":
        result = conjugate_gradient(a, b, tol=args.tol,
                                    max_iter=args.max_iter,
                                    check_finite=args.check_finite,
                                    tuned=args.tuned,
                                    plan_cache_dir=args.plan_cache_dir)
    elif args.solver == "bicgstab":
        result = bicgstab(a, b, tol=args.tol, max_iter=args.max_iter,
                          check_finite=args.check_finite,
                          tuned=args.tuned,
                          plan_cache_dir=args.plan_cache_dir)
    else:
        result = gmres(a, b, tol=args.tol, max_iter=args.max_iter,
                       check_finite=args.check_finite,
                       tuned=args.tuned,
                       plan_cache_dir=args.plan_cache_dir)
    elapsed = time.perf_counter() - t0
    print(f"solver={args.solver} n={a.n_rows} status={result.status} "
          f"iterations={result.iterations} "
          f"residual={result.final_residual:.3e} time={elapsed:.3f}s")
    if result.status != "converged":
        print(f"error: {args.solver} did not converge "
              f"(status={result.status} after {result.iterations} "
              f"iterations, residual {result.final_residual:.3e})",
              file=sys.stderr)
        return EXIT_SOLVER
    return 0


def cmd_tune(args) -> int:
    from . import tune

    a = _load_matrix(args)
    t0 = time.perf_counter()
    if args.kind == "power":
        handle, result = tune.autotune_power(
            a, k=args.k, cache=args.plan_cache_dir,
            repeats=args.repeats, force=args.force,
            max_candidates=args.max_candidates)
        handle.close()
    else:
        _, result = tune.autotune_spmv(
            a, cache=args.plan_cache_dir, repeats=args.repeats,
            force=args.force)
    elapsed = time.perf_counter() - t0
    if result.trials:
        rows = [[t.plan.label,
                 f"{t.time_s * 1e3:.3f}" if t.time_s is not None else "-",
                 {True: "yes", False: "NO", None: "-"}[t.identical],
                 "win" if t.plan == result.plan else
                 ("error" if t.error else
                  ("" if t.accepted else
                   ("not eligible" if t.identical else "rejected")))]
                for t in result.trials]
        print(format_table(["plan", "time (ms)", "bit-identical", ""],
                           rows, title=f"{args.kind} candidates "
                                       f"({a.n_rows:,} rows, "
                                       f"{a.nnz:,} nnz)"))
    print(f"winner: {result.plan.label} (source: {result.source}, "
          f"{elapsed:.2f}s)")
    if result.source == "search" and result.speedup is not None:
        print(f"tuned/default speedup: {result.speedup:.2f}x "
              f"({result.default_time_s * 1e3:.3f} -> "
              f"{result.best_time_s * 1e3:.3f} ms)")
    if result.cache_path is not None:
        print(f"plan cached at {result.cache_path}", file=sys.stderr)
    return 0


def cmd_serve(args) -> int:
    from .serve import ServeConfig, SolveServer, SolveService

    try:
        config = ServeConfig(
            gather_window_s=args.gather_window_ms / 1000.0,
            max_batch=args.max_batch,
            max_queue=args.max_queue,
            max_pending=args.max_pending,
            max_rows=args.max_rows,
            allow_paths=args.allow_paths,
            max_resident=args.max_resident,
            tune=args.tune,
            tune_k=args.tune_k,
            plan_cache_dir=args.plan_cache_dir,
            allow_shutdown=not args.no_remote_shutdown,
            tune_budget_s=args.tune_budget_s,
            tune_breaker=not args.no_tune_breaker,
            hang_timeout_s=args.hang_timeout_s,
            drain_timeout_s=args.drain_timeout_s,
            metrics_port=args.metrics_port,
            slo_target_ms=args.slo_target_ms,
            slo_goal=args.slo_goal,
            profile_hz=args.profile_hz,
        ).validate()
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")

    async def _run() -> None:
        service = SolveService(config)
        server = SolveServer(service, host=args.host, port=args.port)
        await server.start()
        print(f"serving on {server.host}:{server.port}", flush=True)
        if server.metrics_port is not None:
            print(f"metrics on http://{config.metrics_host}:"
                  f"{server.metrics_port}/metrics", flush=True)
        if args.port_file:
            with open(args.port_file, "w") as fh:
                fh.write(str(server.port))
        if args.metrics_port_file and server.metrics_port is not None:
            with open(args.metrics_port_file, "w") as fh:
                fh.write(str(server.metrics_port))
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    print("server drained and stopped", file=sys.stderr)
    return 0


def _load_validated_report(path):
    """Load + schema-check one report file; raises ``ValidationError``
    with the collected problems on schema violations."""
    try:
        report = obs.load_report(path)
    except ValueError as exc:
        raise MatrixMarketError(f"{path}: not valid JSON ({exc})") from exc
    errors = obs.validate_report(report)
    if errors:
        raise ValidationError(
            f"{path}: not a valid RunReport: " + "; ".join(errors))
    return report


def cmd_report(args) -> int:
    a = _load_validated_report(args.file)
    if args.other:
        b = _load_validated_report(args.other)
        print(obs.diff_reports(a, b))
    else:
        print(obs.format_report(a))
    return 0


def cmd_predict(args) -> int:
    info = get_matrix_info(args.name)
    stats = info.traffic_stats()
    ks = list(range(3, 10))
    series = {
        p.name: [predict_speedup(p, stats, k=k) for k in ks]
        for p in PLATFORMS
    }
    rows = [[k] + [series[p.name][i] for p in PLATFORMS]
            for i, k in enumerate(ks)]
    print(format_table(["k"] + [p.name for p in PLATFORMS], rows,
                       title=f"predicted FBMPK speedup for {info.name} "
                             f"({info.rows:,} rows, "
                             f"{info.nnz_per_row:.1f} nnz/row)"))
    print()
    print(line_chart(ks, series, title="speedup vs k"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FBMPK library CLI (IPDPS'23 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="matrix structural statistics")
    _add_matrix_args(p)
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("power", help="compute A^k x")
    _add_matrix_args(p)
    p.add_argument("-k", type=int, default=5, help="power (default 5)")
    p.add_argument("--method", default="fbmpk",
                   choices=["fbmpk", "standard", "mkl", "lbmpk",
                            "explicit"])
    p.add_argument("--strategy", "--schedule", dest="strategy",
                   default="abmc",
                   choices=["abmc", "levels", "levels-blocked"],
                   help="scheduling family: ABMC colour groups, plain "
                        "level sets, or the levels-blocked (RACE-style) "
                        "cache-resident wavefront (--block-size sets "
                        "its rows per block)")
    p.add_argument("--block-size", type=int, default=1)
    p.add_argument("--backend", default="numpy",
                   choices=["numpy", "scipy"])
    p.add_argument("--executor", default="serial",
                   choices=["serial", "threads", "processes"],
                   help="run FBMPK sweeps serially, on the real "
                        "colour-phase thread pool, or on the "
                        "shared-memory process pool (GIL-free)")
    p.add_argument("--threads", type=int, default=None,
                   help="worker count for --executor threads "
                        "(default: all cores)")
    p.add_argument("--workers", type=int, default=None,
                   help="worker count for --executor processes "
                        "(alias for --threads; default: all cores)")
    p.add_argument("--policy", default="lpt",
                   choices=["round_robin", "lpt", "dynamic"],
                   help="block-to-thread assignment policy")
    p.add_argument("--claim-chunk", type=int, default=None,
                   help="blocks a worker claims per work-stealing "
                        "cursor round-trip in the batched dispatch "
                        "path (default: auto-sized per phase)")
    p.add_argument("--pin-workers", default="auto",
                   choices=["auto", "on", "off"],
                   help="deterministic best-effort CPU pinning for "
                        "process-pool workers (auto: only on "
                        "multi-CPU hosts)")
    p.add_argument("--on-failure", default="raise",
                   choices=["raise", "fallback_serial"],
                   help="what a crashed parallel phase does: raise a "
                        "PhaseExecutionError (exit 5) or recompute the "
                        "power serially")
    p.add_argument("--check-finite", action="store_true",
                   help="check input and every iterate for NaN/Inf "
                        "(exit 4 on the first hit)")
    p.add_argument("--operator", help="load a saved .npz operator")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--ones", action="store_true",
                   help="use x = ones instead of a random vector")
    p.add_argument("--tuned", action="store_true",
                   help="use the autotuned execution plan (tuning or "
                        "loading it from the plan cache as needed; "
                        "overrides --strategy/--backend/--executor)")
    p.add_argument("--plan-cache-dir", default=None,
                   help="plan cache directory for --tuned (default: "
                        "$REPRO_PLAN_CACHE_DIR or ~/.cache/repro/plans)")
    _add_obs_args(p)
    p.set_defaults(func=cmd_power)

    p = sub.add_parser("preprocess",
                       help="build and save an FBMPK operator")
    _add_matrix_args(p)
    p.add_argument("-o", "--output", required=True, help=".npz path")
    p.add_argument("--strategy", default="abmc",
                   choices=["abmc", "levels"])
    p.add_argument("--block-size", type=int, default=1)
    p.set_defaults(func=cmd_preprocess)

    p = sub.add_parser("reorder", help="reorder a matrix (ABMC/RCM)")
    _add_matrix_args(p)
    p.add_argument("-o", "--output", required=True,
                   help="output MatrixMarket path")
    p.add_argument("--method", default="abmc", choices=["abmc", "rcm"])
    p.add_argument("--block-size", type=int, default=64)
    p.set_defaults(func=cmd_reorder)

    p = sub.add_parser("solve",
                       help="run an iterative solver, report its status")
    _add_matrix_args(p)
    p.add_argument("--solver", default="cg",
                   choices=["cg", "bicgstab", "gmres"])
    p.add_argument("--tol", type=float, default=1e-8)
    p.add_argument("--max-iter", type=int, default=None)
    p.add_argument("--check-finite", action="store_true",
                   help="validate matrix/rhs for NaN/Inf up front "
                        "(exit 4 on the first hit)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the manufactured solution")
    p.add_argument("--tuned", action="store_true",
                   help="route the solver's SpMVs through the autotuned "
                        "kernel (bit-identical iterates by the tuner's "
                        "acceptance gate)")
    p.add_argument("--plan-cache-dir", default=None,
                   help="plan cache directory for --tuned (default: "
                        "$REPRO_PLAN_CACHE_DIR or ~/.cache/repro/plans)")
    _add_obs_args(p)
    p.set_defaults(func=cmd_solve)

    p = sub.add_parser("tune",
                       help="autotune an execution plan and persist it "
                            "in the plan cache")
    _add_matrix_args(p)
    p.add_argument("--kind", default="power", choices=["power", "spmv"],
                   help="workload to tune: the FBMPK A^k x pipeline or "
                        "a single SpMV kernel")
    p.add_argument("-k", type=int, default=8,
                   help="power for --kind power (default 8)")
    p.add_argument("--repeats", type=int, default=5,
                   help="timed repeats per candidate (trimmed mean)")
    p.add_argument("--max-candidates", type=int, default=None,
                   help="truncate the (analytically pre-ordered) "
                        "candidate list; the default plan always stays")
    p.add_argument("--force", action="store_true",
                   help="re-run the search even on a cache hit")
    p.add_argument("--plan-cache-dir", default=None,
                   help="plan cache directory (default: "
                        "$REPRO_PLAN_CACHE_DIR or ~/.cache/repro/plans)")
    _add_obs_args(p)
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser("serve",
                       help="run the multi-tenant solve service "
                            "(NDJSON over TCP, batched sweeps)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7654,
                   help="TCP port (0 binds an ephemeral port; pair "
                        "with --port-file)")
    p.add_argument("--port-file", default=None,
                   help="write the bound port to this file once "
                        "listening (lets scripts use --port 0)")
    p.add_argument("--gather-window-ms", type=float, default=2.0,
                   help="how long the first request for a (matrix, k) "
                        "waits for companions before its batch is "
                        "sealed (latency traded for batching)")
    p.add_argument("--max-batch", type=int, default=32,
                   help="seal a batch early at this many RHS vectors")
    p.add_argument("--max-queue", type=int, default=256,
                   help="per-(matrix, k) queue bound; beyond it "
                        "requests get a structured queue_full "
                        "rejection")
    p.add_argument("--max-pending", type=int, default=4096,
                   help="global bound on queued requests")
    p.add_argument("--max-rows", type=int, default=200_000,
                   help="reject matrix specs larger than this")
    p.add_argument("--max-resident", type=int, default=4,
                   help="resident operator cap (LRU eviction beyond)")
    p.add_argument("--allow-paths", action="store_true",
                   help="let requests name MatrixMarket files on this "
                        "machine (off by default)")
    p.add_argument("--tune", default="full", choices=["off", "full"],
                   help="autotune first requests through the plan "
                        "cache ('full') or build the default operator "
                        "directly ('off')")
    p.add_argument("--tune-k", type=int, default=4,
                   help="power used when tuning a new structure")
    p.add_argument("--plan-cache-dir", default=None,
                   help="plan cache directory (default: "
                        "$REPRO_PLAN_CACHE_DIR or ~/.cache/repro/plans)")
    p.add_argument("--no-remote-shutdown", action="store_true",
                   help="ignore shutdown requests from clients")
    p.add_argument("--tune-budget-s", type=float, default=None,
                   help="per-search time budget for autotuning a new "
                        "structure; a blown budget counts as a tune "
                        "circuit-breaker failure")
    p.add_argument("--no-tune-breaker", action="store_true",
                   help="disable the tune circuit breaker (repeated "
                        "search failures then keep re-paying the "
                        "search instead of serving the default plan)")
    p.add_argument("--hang-timeout-s", type=float, default=None,
                   help="arm the executor watchdogs: a pool worker "
                        "silent for this long is killed and the sweep "
                        "falls back serially")
    p.add_argument("--drain-timeout-s", type=float, default=30.0,
                   help="bound on the shutdown drain; batches still "
                        "executing past it are abandoned with "
                        "structured errors")
    p.add_argument("--metrics-port", type=int, default=None,
                   help="serve Prometheus text exposition on this HTTP "
                        "port (0 binds an ephemeral port; pair with "
                        "--metrics-port-file); also activates a "
                        "telemetry session for the server's lifetime")
    p.add_argument("--metrics-port-file", default=None,
                   help="write the bound metrics port to this file "
                        "once listening")
    p.add_argument("--slo-target-ms", type=float, default=250.0,
                   help="latency SLO: a power request is good when it "
                        "succeeds within this budget")
    p.add_argument("--slo-goal", type=float, default=0.99,
                   help="fraction of good requests the error budget "
                        "is computed against (default 0.99)")
    _add_obs_args(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("predict",
                       help="machine-model speedup predictions")
    p.add_argument("name", choices=list_matrix_names())
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("report",
                       help="validate and pretty-print a RunReport, or "
                            "diff two of them")
    p.add_argument("file", help="RunReport JSON (from --report)")
    p.add_argument("other", nargs="?",
                   help="second report: print a diff instead")
    p.set_defaults(func=cmd_report)

    return parser


def main(argv=None) -> int:
    """Parse and dispatch; map typed failures to exit codes.

    ``MatrixMarketError``/``OSError`` (unreadable or malformed input
    file) → 3, ``ValidationError`` (structural defects, NaN/Inf caught
    by ``--validate``/``--check-finite``) → 4, ``PhaseExecutionError``
    (crashed parallel phase) → 5, ``DeadlineExceededError`` (a blown
    deadline/budget) → 8.  Solver non-convergence returns 6
    from :func:`cmd_solve` directly.  A failure writing the requested
    ``--trace``/``--metrics``/``--report`` artefacts → 7 (the command
    itself succeeded; a command failure keeps its own code — telemetry
    of a failed run is still exported when possible, it is often the
    most useful kind).  Each failure is a single ``error:`` line on
    stderr, not a traceback.
    """
    args = build_parser().parse_args(argv)
    # NB: --metrics-port 0 (ephemeral) is falsy, hence the explicit
    # None check — truthiness would silently disable telemetry.
    wants_obs = any(getattr(args, flag, None)
                    for flag in ("trace", "metrics", "report",
                                 "profile")) \
        or getattr(args, "metrics_port", None) is not None
    tel = obs.Telemetry() if wants_obs else None
    sampler = None
    if tel is not None:
        tel.activate()
        if getattr(args, "profile", None):
            sampler = obs.StackSampler(
                hz=getattr(args, "profile_hz", None) or 100.0,
                recorder=tel.recorder).start()
    code = EXIT_OK
    try:
        code = args.func(args)
    except MatrixMarketError as exc:
        print(f"error: {exc}", file=sys.stderr)
        code = EXIT_IO
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        code = EXIT_VALIDATION
    except PhaseExecutionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        code = EXIT_EXECUTION
    except DeadlineExceededError as exc:
        print(f"error: {exc}", file=sys.stderr)
        code = EXIT_DEADLINE
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        code = EXIT_IO
    finally:
        if sampler is not None:
            sampler.stop()
        if tel is not None:
            tel.deactivate()
    if tel is not None:
        try:
            _export_telemetry(tel, args)
            if sampler is not None:
                n = obs.write_collapsed(sampler.collapsed(),
                                        args.profile)
                print(f"profile written to {args.profile} "
                      f"({n} stacks, {sampler.sample_count} samples)",
                      file=sys.stderr)
        except OSError as exc:
            print(f"error: telemetry export failed: {exc}",
                  file=sys.stderr)
            if code == EXIT_OK:
                code = EXIT_TELEMETRY
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
