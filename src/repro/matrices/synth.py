"""Low-level synthetic sparse-structure generators.

These produce the building blocks the Table II stand-ins are assembled
from: grid stencils (circuit/2-D/3-D problems), banded random structures
(FEM meshes of shells, ships, engines) and random rectangular couplings
(KKT constraint blocks).

All generators:

* are deterministic given ``seed``;
* return :class:`repro.sparse.csr.CSRMatrix`;
* make the matrix rows diagonally dominant, then scale by the inverse
  infinity norm, so that ``A^k x`` stays bounded for the paper's powers
  ``k = 3..9`` and CG-style solvers converge on the symmetric ones.
"""

from __future__ import annotations

import numpy as np

from ..sparse.coo import COOMatrix
from ..sparse.csr import CSRMatrix

__all__ = [
    "poisson2d",
    "poisson3d",
    "stencil27",
    "banded_random",
    "random_rectangular",
    "finalize_values",
]


def finalize_values(
    coo: COOMatrix,
    rng: np.random.Generator,
    symmetric: bool,
    scale_inf_norm: bool = True,
) -> CSRMatrix:
    """Assign values to a structure and condition the result.

    Off-diagonal values are uniform in ``[-1, 1)``; the diagonal is set to
    ``1 + sum |offdiag|`` per row, making the matrix strictly diagonally
    dominant (and hence SPD when symmetric).  When ``scale_inf_norm`` the
    whole matrix is divided by its infinity norm so the spectral radius is
    at most 1 — powers of the matrix neither explode nor need
    normalisation inside the kernels.
    """
    csr = coo.to_csr()
    n = csr.n_rows
    rows = np.repeat(np.arange(n, dtype=np.int64), csr.row_nnz())
    off = rows != csr.indices
    data = csr.data.copy()
    data[off] = rng.uniform(-1.0, 1.0, size=int(off.sum()))
    if symmetric:
        # Re-symmetrise the off-diagonal values: keep the value drawn for
        # the (min, max) orientation of each pair.
        tmp = CSRMatrix(csr.indptr, csr.indices, data, csr.shape, check=False)
        sym = tmp.transpose()
        data = 0.5 * (data + _match_transpose_data(tmp, sym))
    from ..sparse.csr import reduce_rows

    off_abs = np.where(off, np.abs(data), 0.0)
    rowsum = reduce_rows(off_abs, csr.indptr)
    data[~off] = 0.0
    diag_rows = np.arange(n, dtype=np.int64)
    # Rebuild including a guaranteed full diagonal.
    all_rows = np.concatenate([rows[off], diag_rows])
    all_cols = np.concatenate([csr.indices[off], diag_rows])
    all_vals = np.concatenate([data[off], 1.0 + rowsum])
    out = CSRMatrix.from_coo_arrays(all_rows, all_cols, all_vals, csr.shape)
    if scale_inf_norm:
        row_abs = reduce_rows(np.abs(out.data), out.indptr)
        inf_norm = float(row_abs.max(initial=1.0))
        out = CSRMatrix(out.indptr, out.indices, out.data / inf_norm,
                        out.shape, check=False)
    return out


def _match_transpose_data(a: CSRMatrix, at: CSRMatrix) -> np.ndarray:
    """Data of ``A^T`` aligned to ``A``'s storage order, assuming the two
    share a symmetric *pattern* (guaranteed by the structure generators
    that request symmetry)."""
    a_sorted = a.sort_indices()
    at_sorted = at.sort_indices()
    if not np.array_equal(a_sorted.indices, at_sorted.indices):
        raise ValueError("pattern is not symmetric; cannot symmetrise values")
    # Map back from sorted order to a's original order.
    rows = np.repeat(np.arange(a.n_rows, dtype=np.int64), a.row_nnz())
    order = np.lexsort((a.indices, rows))
    out = np.empty_like(a.data)
    out[order] = at_sorted.data
    return out


def _grid_stencil(shape_dims, offsets) -> COOMatrix:
    """Generic grid stencil assembly: nodes are grid points in row-major
    order; each ``offsets`` tuple adds a neighbour coupling where the
    neighbour stays on the grid."""
    dims = tuple(int(d) for d in shape_dims)
    n = int(np.prod(dims))
    grids = np.meshgrid(*[np.arange(d) for d in dims], indexing="ij")
    flat = np.arange(n, dtype=np.int64)
    rows_list = [flat]  # diagonal
    cols_list = [flat]
    for off in offsets:
        valid = np.ones(dims, dtype=bool)
        for axis, o in enumerate(off):
            coord = grids[axis] + o
            valid &= (coord >= 0) & (coord < dims[axis])
        neighbour = flat.reshape(dims)
        idx = tuple(np.clip(grids[axis] + off[axis], 0, dims[axis] - 1)
                    for axis in range(len(dims)))
        rows_list.append(flat.reshape(dims)[valid].ravel())
        cols_list.append(neighbour[idx][valid].ravel())
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return COOMatrix(rows, cols, np.ones(rows.shape[0]), (n, n))


def poisson2d(nx: int, ny: int | None = None, seed: int = 0) -> CSRMatrix:
    """5-point 2-D Laplacian-style matrix on an ``nx x ny`` grid.

    At ~5 nnz/row this matches the sparsity character of ``G3_circuit``
    (4.83 nnz/row), the sparsest Table II input.
    """
    ny = nx if ny is None else ny
    rng = np.random.default_rng(seed)
    offsets = [(-1, 0), (1, 0), (0, -1), (0, 1)]
    return finalize_values(_grid_stencil((nx, ny), offsets), rng,
                           symmetric=True)


def poisson3d(nx: int, ny: int | None = None, nz: int | None = None,
              seed: int = 0) -> CSRMatrix:
    """7-point 3-D Laplacian-style matrix on an ``nx x ny x nz`` grid."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    rng = np.random.default_rng(seed)
    offsets = [(-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0),
               (0, 0, -1), (0, 0, 1)]
    return finalize_values(_grid_stencil((nx, ny, nz), offsets), rng,
                           symmetric=True)


def stencil27(nx: int, seed: int = 0) -> CSRMatrix:
    """27-point 3-D stencil (full 3x3x3 neighbourhood) — the connectivity
    of trilinear hexahedral FEM discretisations."""
    rng = np.random.default_rng(seed)
    offsets = [
        (dx, dy, dz)
        for dx in (-1, 0, 1)
        for dy in (-1, 0, 1)
        for dz in (-1, 0, 1)
        if (dx, dy, dz) != (0, 0, 0)
    ]
    return finalize_values(_grid_stencil((nx, nx, nx), offsets), rng,
                           symmetric=True)


def banded_random(
    n: int,
    nnz_per_row: float,
    bandwidth: int,
    symmetric: bool = True,
    seed: int = 0,
) -> CSRMatrix:
    """Random banded structure: each row couples to ~``nnz_per_row``
    columns drawn from a normal distribution of width ``bandwidth``
    around the diagonal.

    This mimics assembled FEM matrices (``audikw_1``, ``ldoor``,
    ``cant``...): heavy short-range coupling with locality decided by the
    mesh numbering.  ``symmetric=False`` yields a ``cage14``-like digraph.
    """
    if n < 1:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed)
    m = max(int(round(nnz_per_row)) - 1, 1)  # off-diagonals per row
    if symmetric:
        m = max(m // 2, 1)  # mirroring doubles them
    rows = np.repeat(np.arange(n, dtype=np.int64), m)
    offs = rng.normal(0.0, max(bandwidth, 1) / 2.0, size=n * m)
    offs = np.round(offs).astype(np.int64)
    offs[offs == 0] = 1
    cols = np.clip(rows + offs, 0, n - 1)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    if symmetric:
        rows, cols = (np.concatenate([rows, cols]),
                      np.concatenate([cols, rows]))
    # Deduplicate pattern through COO->CSR with unit values, then draw the
    # final values.
    pattern = COOMatrix(rows, cols, np.ones(rows.shape[0]), (n, n)).to_csr()
    pat_rows = np.repeat(np.arange(n, dtype=np.int64), pattern.row_nnz())
    structure = COOMatrix(pat_rows, pattern.indices,
                          np.ones(pattern.nnz), (n, n))
    return finalize_values(structure, rng, symmetric=symmetric)


def random_rectangular(
    n_rows: int, n_cols: int, nnz_per_row: float, seed: int = 0
) -> COOMatrix:
    """Uniform random rectangular coupling block (for KKT assembly)."""
    rng = np.random.default_rng(seed)
    m = max(int(round(nnz_per_row)), 1)
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), m)
    cols = rng.integers(0, n_cols, size=n_rows * m, dtype=np.int64)
    vals = rng.uniform(-1.0, 1.0, size=n_rows * m)
    return COOMatrix(rows, cols, vals, (n_rows, n_cols))
