"""Loading the *real* SuiteSparse evaluation matrices when available.

The reproduction ships synthetic stand-ins (no network, no 100M-nnz
files), but users who have the actual SuiteSparse downloads can point
``REPRO_SUITESSPARSE_DIR``/``REPRO_SUITESPARSE_DIR`` at a directory of
``<name>.mtx`` files and every harness picks up the genuine inputs
through :func:`load_matrix`.

Resolution order:

1. ``<dir>/<name>.mtx`` (also ``<dir>/<name>/<name>.mtx``, the layout of
   SuiteSparse archive extraction);
2. the registry's synthetic stand-in at the requested size.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path
from typing import Optional, Tuple

from ..sparse.csr import CSRMatrix
from ..sparse.io import MatrixMarketError, read_matrix_market
from .registry import get_matrix_info

__all__ = ["suitesparse_dir", "find_matrix_file", "load_matrix"]

_ENV_VARS = ("REPRO_SUITESPARSE_DIR", "REPRO_SUITESSPARSE_DIR")


def suitesparse_dir() -> Optional[Path]:
    """The configured SuiteSparse directory, if any."""
    for var in _ENV_VARS:
        value = os.environ.get(var)
        if value:
            return Path(value)
    return None


def find_matrix_file(name: str, base: Optional[Path] = None
                     ) -> Optional[Path]:
    """Locate ``<name>.mtx`` under the SuiteSparse directory."""
    base = base if base is not None else suitesparse_dir()
    if base is None:
        return None
    candidates = [base / f"{name}.mtx", base / name / f"{name}.mtx"]
    for cand in candidates:
        if cand.is_file():
            return cand
    return None


def load_matrix(name: str, n_rows: int = 20_000,
                seed: Optional[int] = None,
                strict: bool = False) -> Tuple[CSRMatrix, str]:
    """Load a Table II matrix: the real file when configured, the
    synthetic stand-in otherwise.

    Returns ``(matrix, source)`` with ``source`` one of ``"suitesparse"``
    or ``"standin"`` so harnesses can label their outputs.

    A configured ``.mtx`` file that fails to parse (corrupt download,
    truncated extraction, permission error) does not abort the harness:
    by default a :class:`RuntimeWarning` is emitted and the synthetic
    stand-in is used instead.  Pass ``strict=True`` to re-raise the
    underlying :class:`~repro.sparse.io.MatrixMarketError`/``OSError``.
    """
    info = get_matrix_info(name)  # validates the name
    path = find_matrix_file(name)
    if path is not None:
        try:
            return read_matrix_market(str(path)).to_csr(), "suitesparse"
        except (MatrixMarketError, OSError, ValueError) as exc:
            if strict:
                raise
            warnings.warn(
                f"failed to load SuiteSparse file {path} ({exc}); "
                f"falling back to the synthetic {name!r} stand-in",
                RuntimeWarning, stacklevel=2)
    return info.generate(n_rows=n_rows, seed=seed), "standin"
