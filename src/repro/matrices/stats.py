"""Structural statistics of sparse matrices.

The quantities the paper's analysis keys on, computed from an in-memory
matrix: size/nnz/nnz-per-row (the Table II columns), bandwidth and its
distribution (the vector-locality driver of the traffic model), symmetry
degree, diagonal coverage, and a Gershgorin spectral enclosure.  Used by
the CLI's ``info`` command and by the benches' stand-in validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..sparse.csr import CSRMatrix, reduce_rows

__all__ = ["MatrixStatsReport", "analyze_matrix"]


@dataclass(frozen=True)
class MatrixStatsReport:
    """Summary statistics of one square sparse matrix."""

    n_rows: int
    n_cols: int
    nnz: int
    nnz_per_row_mean: float
    nnz_per_row_min: int
    nnz_per_row_max: int
    bandwidth: int
    mean_offset: float
    symmetric_pattern: bool
    symmetric_values: bool
    diagonal_nonzeros: int
    gershgorin_lo: float
    gershgorin_hi: float

    @property
    def density(self) -> float:
        """Fraction of stored entries over the dense size."""
        size = self.n_rows * self.n_cols
        return self.nnz / size if size else 0.0

    @property
    def full_diagonal(self) -> bool:
        """True when every diagonal entry is stored and nonzero."""
        return self.diagonal_nonzeros == min(self.n_rows, self.n_cols)

    def as_dict(self) -> Dict[str, object]:
        """Flat dict for table/JSON rendering."""
        return {
            "rows": self.n_rows,
            "cols": self.n_cols,
            "nnz": self.nnz,
            "nnz/row (mean)": round(self.nnz_per_row_mean, 2),
            "nnz/row (min..max)":
                f"{self.nnz_per_row_min}..{self.nnz_per_row_max}",
            "density": f"{self.density:.2e}",
            "bandwidth": self.bandwidth,
            "mean |i-j|": round(self.mean_offset, 1),
            "symmetric pattern": self.symmetric_pattern,
            "symmetric values": self.symmetric_values,
            "full diagonal": self.full_diagonal,
            "Gershgorin": f"[{self.gershgorin_lo:.4g}, "
                          f"{self.gershgorin_hi:.4g}]",
        }


def analyze_matrix(a: CSRMatrix) -> MatrixStatsReport:
    """Compute a :class:`MatrixStatsReport` for a square CSR matrix."""
    if a.shape[0] != a.shape[1]:
        raise ValueError("analysis requires a square matrix")
    n = a.n_rows
    counts = a.row_nnz()
    rows = np.repeat(np.arange(n, dtype=np.int64), counts)
    offsets = np.abs(rows - a.indices) if a.nnz else np.zeros(0, np.int64)
    # Symmetry: compare sorted structure/values against the transpose.
    t = a.transpose().sort_indices()
    s = a.sort_indices()
    sym_pattern = (np.array_equal(s.indptr, t.indptr)
                   and np.array_equal(s.indices, t.indices))
    sym_values = sym_pattern and bool(
        np.allclose(s.data, t.data, rtol=1e-12, atol=1e-14))
    on_diag = rows == a.indices
    diag = np.zeros(n)
    np.add.at(diag, rows[on_diag], a.data[on_diag])
    radii = reduce_rows(np.where(on_diag, 0.0, np.abs(a.data)), a.indptr)
    return MatrixStatsReport(
        n_rows=n,
        n_cols=a.n_cols,
        nnz=a.nnz,
        nnz_per_row_mean=a.nnz / max(n, 1),
        nnz_per_row_min=int(counts.min()) if counts.size else 0,
        nnz_per_row_max=int(counts.max()) if counts.size else 0,
        bandwidth=int(offsets.max(initial=0)),
        mean_offset=float(offsets.mean()) if offsets.size else 0.0,
        symmetric_pattern=sym_pattern,
        symmetric_values=sym_values,
        diagonal_nonzeros=int(np.count_nonzero(diag)),
        gershgorin_lo=float((diag - radii).min()) if n else 0.0,
        gershgorin_hi=float((diag + radii).max()) if n else 0.0,
    )
