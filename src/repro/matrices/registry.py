"""Registry of the paper's Table II evaluation matrices.

Each entry records the published statistics (rows, nnz, nnz/row,
symmetry, domain) — used verbatim by the analytic traffic/performance
models so that Fig 7/8/9-style results are computed at *paper scale* —
and a generator producing a scale-reduced synthetic stand-in with the
same structural character, used wherever actual kernels must run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..sparse.csr import CSRMatrix
from . import generators as g

__all__ = ["MatrixInfo", "TABLE2", "get_matrix_info", "generate_standin",
           "list_matrix_names"]


@dataclass(frozen=True)
class MatrixInfo:
    """One row of Table II plus reproduction metadata.

    ``rows``/``nnz`` are the published full-scale numbers; ``generator``
    builds the stand-in at a requested reduced size; ``domain`` is the
    application area the paper lists for dataset diversity.

    ``dim`` is the effective problem dimensionality used to estimate the
    matrix bandwidth (the active vector window of the traffic model): a
    ``d``-dimensional mesh numbered along its axes has bandwidth
    ``~ n^((d-1)/d)``.  ``bandwidth_scale`` multiplies that estimate —
    large for structures with long-range coupling (KKT constraint rows,
    circuit nets), 1.0 for well-numbered meshes.
    """

    id: int
    name: str
    rows: int
    nnz: int
    symmetric: bool
    domain: str
    generator: Callable[[int, int], CSRMatrix]
    dim: int = 3
    bandwidth_scale: float = 1.0

    @property
    def nnz_per_row(self) -> float:
        """Average stored entries per row (Table II's #nnz/N column)."""
        return self.nnz / self.rows

    def bandwidth_estimate(self, rows: int | None = None) -> float:
        """Estimated matrix bandwidth at ``rows`` (paper scale default)."""
        n = self.rows if rows is None else rows
        return self.bandwidth_scale * float(n) ** ((self.dim - 1) / self.dim)

    def traffic_stats(self, rows: int | None = None):
        """Paper-scale (or rescaled) inputs for the analytic traffic
        model (:class:`repro.memsim.traffic.MatrixTrafficStats`)."""
        from ..memsim.traffic import MatrixTrafficStats

        n = self.rows if rows is None else rows
        nnz = int(round(self.nnz_per_row * n))
        return MatrixTrafficStats(n=n, nnz=nnz,
                                  bandwidth=self.bandwidth_estimate(n))

    def generate(self, n_rows: int = 20_000, seed: int | None = None) -> CSRMatrix:
        """Build the scale-reduced stand-in (~``n_rows`` rows)."""
        return self.generator(n_rows, self.id if seed is None else seed)


def _standin(fn: Callable, **kwargs) -> Callable[[int, int], CSRMatrix]:
    def build(n_rows: int, seed: int) -> CSRMatrix:
        return fn(n_rows, seed=seed, **kwargs)

    return build


def _standin_circuit() -> Callable[[int, int], CSRMatrix]:
    def build(n_rows: int, seed: int) -> CSRMatrix:
        return g.generate_circuit(n_rows, seed=seed)

    return build


#: The 14 evaluation inputs of Table II, in paper order.
TABLE2: List[MatrixInfo] = [
    MatrixInfo(1, "af_shell10", 1_508_065, 52_672_325, True,
               "sheet metal forming (shell FEM)",
               _standin(g.generate_fem_shell, nnz_per_row=34.93),
               dim=2, bandwidth_scale=1.2),
    MatrixInfo(2, "audikw_1", 943_695, 77_651_847, True,
               "automotive crankshaft FEM",
               _standin(g.generate_fem_solid, nnz_per_row=82.28),
               dim=3, bandwidth_scale=2.0),
    MatrixInfo(3, "cage14", 1_505_785, 27_130_349, False,
               "DNA electrophoresis digraph",
               _standin(g.generate_cage_digraph, nnz_per_row=18.02),
               dim=3, bandwidth_scale=3.0),
    MatrixInfo(4, "cant", 62_451, 4_007_383, True,
               "FEM cantilever",
               _standin(g.generate_fem_solid, nnz_per_row=64.17),
               dim=3, bandwidth_scale=1.0),
    MatrixInfo(5, "Flan_1565", 1_564_794, 117_406_044, True,
               "3D steel flange FEM",
               _standin(g.generate_fem_solid, nnz_per_row=75.03),
               dim=3, bandwidth_scale=1.0),
    MatrixInfo(6, "G3_circuit", 1_585_478, 7_660_826, True,
               "circuit simulation",
               _standin_circuit(),
               dim=2, bandwidth_scale=1.0),
    MatrixInfo(7, "Hook_1498", 1_498_023, 60_917_445, True,
               "steel hook FEM",
               _standin(g.generate_ship_structure, nnz_per_row=40.67),
               dim=3, bandwidth_scale=1.0),
    MatrixInfo(8, "inline_1", 503_712, 36_816_342, True,
               "inline skater FEM",
               _standin(g.generate_fem_solid, nnz_per_row=73.09),
               dim=3, bandwidth_scale=2.0),
    MatrixInfo(9, "ldoor", 952_203, 46_522_475, True,
               "large door structural FEM",
               _standin(g.generate_ship_structure, nnz_per_row=48.86),
               dim=3, bandwidth_scale=1.0),
    MatrixInfo(10, "ML_Geer", 1_504_002, 110_879_972, False,
               "poroelastic model (unsymmetric)",
               _standin(g.generate_cage_digraph, nnz_per_row=73.72),
               dim=3, bandwidth_scale=1.0),
    MatrixInfo(11, "nlpkkt120", 3_542_400, 96_845_792, True,
               "nonlinear optimisation KKT system",
               lambda n_rows, seed: g.generate_kkt(n_rows, seed=seed),
               dim=3, bandwidth_scale=4.0),
    MatrixInfo(12, "pwtk", 217_918, 11_634_424, True,
               "pressurised wind tunnel FEM",
               _standin(g.generate_fem_shell, nnz_per_row=53.39),
               dim=2, bandwidth_scale=1.0),
    MatrixInfo(13, "Serena", 1_391_349, 64_531_701, True,
               "gas reservoir simulation FEM",
               _standin(g.generate_fem_solid, nnz_per_row=46.38),
               dim=3, bandwidth_scale=1.0),
    MatrixInfo(14, "shipsec1", 140_874, 7_813_404, True,
               "ship section structural FEM",
               _standin(g.generate_ship_structure, nnz_per_row=55.46),
               dim=3, bandwidth_scale=1.0),
]

_BY_NAME: Dict[str, MatrixInfo] = {m.name: m for m in TABLE2}


def get_matrix_info(name: str) -> MatrixInfo:
    """Look up a Table II entry by its paper name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown matrix {name!r}; known: {sorted(_BY_NAME)}"
        ) from None


def list_matrix_names() -> List[str]:
    """All Table II matrix names in paper order."""
    return [m.name for m in TABLE2]


def generate_standin(name: str, n_rows: int = 20_000,
                     seed: int | None = None) -> CSRMatrix:
    """Generate the scale-reduced stand-in for a named Table II matrix."""
    return get_matrix_info(name).generate(n_rows=n_rows, seed=seed)
