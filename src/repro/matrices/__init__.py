"""Evaluation matrices: Table II registry and synthetic stand-ins.

The registry carries the paper-scale statistics for the analytic models;
the generators build scale-reduced matrices with matching structural
character for running the actual kernels (see DESIGN.md's substitution
table for the rationale).
"""

from .generators import (
    generate_cage_digraph,
    generate_circuit,
    generate_fem_shell,
    generate_fem_solid,
    generate_kkt,
    generate_poisson2d,
    generate_poisson3d,
    generate_ship_structure,
)
from .registry import (
    TABLE2,
    MatrixInfo,
    generate_standin,
    get_matrix_info,
    list_matrix_names,
)
from .loader import find_matrix_file, load_matrix, suitesparse_dir
from .stats import MatrixStatsReport, analyze_matrix
from .synth import banded_random, poisson2d, poisson3d, stencil27

__all__ = [
    "generate_cage_digraph",
    "generate_circuit",
    "generate_fem_shell",
    "generate_fem_solid",
    "generate_kkt",
    "generate_poisson2d",
    "generate_poisson3d",
    "generate_ship_structure",
    "TABLE2",
    "MatrixInfo",
    "generate_standin",
    "get_matrix_info",
    "list_matrix_names",
    "find_matrix_file",
    "load_matrix",
    "suitesparse_dir",
    "MatrixStatsReport",
    "analyze_matrix",
    "banded_random",
    "poisson2d",
    "poisson3d",
    "stencil27",
]
