"""Domain-specific generators for the Table II stand-in matrices.

The paper's inputs come from the SuiteSparse collection (52M-117M nnz
files we cannot ship offline).  Each generator here builds a scale-reduced
matrix with the same *structural character* — nnz/row, symmetry, locality
profile — as its SuiteSparse counterpart, because those are the features
the FBMPK analysis keys on (traffic is proportional to nnz; vector-access
overhead to nnz/row; colouring behaviour to the connectivity pattern).

``n_target`` is the requested number of rows; generators honour it
approximately (grid generators round to the nearest grid).
"""

from __future__ import annotations

import numpy as np

from ..sparse.coo import COOMatrix
from ..sparse.csr import CSRMatrix
from .synth import (
    banded_random,
    finalize_values,
    poisson2d,
    poisson3d,
    random_rectangular,
)

__all__ = [
    "generate_poisson2d",
    "generate_poisson3d",
    "generate_fem_shell",
    "generate_fem_solid",
    "generate_circuit",
    "generate_cage_digraph",
    "generate_kkt",
    "generate_ship_structure",
]


def generate_poisson2d(nx: int, seed: int = 0) -> CSRMatrix:
    """Re-export of the 5-point grid generator (quickstart matrix)."""
    return poisson2d(nx, seed=seed)


def generate_poisson3d(nx: int, seed: int = 0) -> CSRMatrix:
    """Re-export of the 7-point grid generator."""
    return poisson3d(nx, seed=seed)


def generate_fem_shell(n_target: int, nnz_per_row: float = 35.0,
                       seed: int = 0) -> CSRMatrix:
    """Shell-element FEM stand-in (``af_shell10``, ``pwtk``-like).

    Shell meshes are quasi-2-D: moderate nnz/row, bandwidth growing as
    ``~sqrt(n)`` like a 2-D mesh numbered along one axis.
    """
    band = max(int(1.2 * n_target ** 0.5), 16)
    return banded_random(n_target, nnz_per_row, band, symmetric=True,
                         seed=seed)


def generate_fem_solid(n_target: int, nnz_per_row: float = 75.0,
                       seed: int = 0) -> CSRMatrix:
    """Solid 3-D FEM stand-in (``audikw_1``, ``Flan_1565``, ``inline_1``,
    ``Serena``...): high nnz/row from vector-valued 3-D elements, wider
    bandwidth."""
    band = max(int(n_target ** (2.0 / 3.0)), 32)
    return banded_random(n_target, nnz_per_row, band, symmetric=True,
                         seed=seed)


def generate_circuit(n_target: int, seed: int = 0) -> CSRMatrix:
    """Circuit-simulation stand-in (``G3_circuit``): a 2-D grid Laplacian
    (~5 nnz/row) with a sprinkling of long-range connections for the
    off-grid circuit elements."""
    nx = max(int(round(np.sqrt(n_target))), 2)
    base = poisson2d(nx, seed=seed)
    n = base.n_rows
    rng = np.random.default_rng(seed + 1)
    extra = max(n // 50, 1)  # ~2% of rows get one long-range link
    r = rng.integers(0, n, size=extra, dtype=np.int64)
    c = rng.integers(0, n, size=extra, dtype=np.int64)
    keep = r != c
    r, c = r[keep], c[keep]
    rows = np.concatenate([
        np.repeat(np.arange(n, dtype=np.int64), base.row_nnz()), r, c,
    ])
    cols = np.concatenate([base.indices, c, r])
    structure = COOMatrix(rows, cols, np.ones(rows.shape[0]), base.shape)
    return finalize_values(structure, rng, symmetric=True)


def generate_cage_digraph(n_target: int, nnz_per_row: float = 18.0,
                          seed: int = 0) -> CSRMatrix:
    """DNA-electrophoresis digraph stand-in (``cage14``): *unsymmetric*,
    moderate nnz/row, banded locality from the cage model's state
    numbering."""
    band = max(int(3 * n_target ** (2.0 / 3.0)), 64)
    return banded_random(n_target, nnz_per_row, band, symmetric=False,
                         seed=seed)


def generate_kkt(n_target: int, seed: int = 0) -> CSRMatrix:
    """KKT saddle-point stand-in (``nlpkkt120``): symmetric
    ``[[H, B^T], [B, 0]]`` with a banded Hessian block and a random sparse
    constraint block — the two-population row structure of interior-point
    systems."""
    n_h = (2 * n_target) // 3
    n_b = n_target - n_h
    rng = np.random.default_rng(seed)
    h = banded_random(n_h, 24.0, 96, symmetric=True, seed=seed)
    b = random_rectangular(n_b, n_h, 8.0, seed=seed + 1)
    n = n_h + n_b
    h_rows = np.repeat(np.arange(n_h, dtype=np.int64), h.row_nnz())
    rows = np.concatenate([h_rows, b.rows + n_h, b.cols])
    cols = np.concatenate([h.indices, b.cols, b.rows + n_h])
    structure = COOMatrix(rows, cols, np.ones(rows.shape[0]), (n, n))
    return finalize_values(structure, rng, symmetric=True)


def generate_ship_structure(n_target: int, nnz_per_row: float = 55.0,
                            seed: int = 0) -> CSRMatrix:
    """Ship/section structural stand-in (``shipsec1``, ``ldoor``,
    ``Hook_1498``): stiffened-panel meshes — mid nnz/row, clustered
    bandwidth with occasional stiffener jumps."""
    band = max(int(n_target ** (2.0 / 3.0)), 64)
    base = banded_random(n_target, nnz_per_row * 0.9, band, symmetric=True,
                         seed=seed)
    n = base.n_rows
    rng = np.random.default_rng(seed + 7)
    # Stiffener couplings: regular long-range links every ~200 rows.
    stride = 200
    r = np.arange(0, max(n - stride, 0), dtype=np.int64)
    c = r + stride
    rows = np.concatenate([
        np.repeat(np.arange(n, dtype=np.int64), base.row_nnz()), r, c,
    ])
    cols = np.concatenate([base.indices, c, r])
    structure = COOMatrix(rows, cols, np.ones(rows.shape[0]), base.shape)
    return finalize_values(structure, rng, symmetric=True)
