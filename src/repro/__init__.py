"""repro — reproduction of "Memory-aware Optimization for Sequences of
Sparse Matrix-Vector Multiplications" (Zhang et al., IPDPS 2023).

The package implements the FBMPK library the paper describes: a
forward-backward matrix-power kernel over an ``A = L + D + U`` partition
with back-to-back vector storage and ABMC multi-colour parallelisation,
plus every substrate needed to reproduce the paper's evaluation — sparse
formats, reordering algorithms, a cache/traffic simulator, machine
performance models for the four evaluation platforms, synthetic stand-ins
for the Table II matrices, and application-level solvers.

Quickstart::

    import numpy as np
    from repro import build_fbmpk_operator, mpk_standard
    from repro.matrices import generate_poisson2d

    a = generate_poisson2d(64)            # a CSRMatrix
    x = np.ones(a.n_rows)
    op = build_fbmpk_operator(a)          # one-off preprocessing
    y = op.power(x, k=5)                  # A^5 x, ~3 matrix reads
    assert np.allclose(y, mpk_standard(a, x, 5))  # vs 5 matrix reads
"""

from .core import (
    FBMPKOperator,
    KernelCounter,
    SSpMVProblem,
    build_fbmpk_operator,
    fbmpk_plan,
    fbmpk_reference,
    fbmpk_unfused,
    mpk_standard,
    split_ldu,
    sspmv_fbmpk,
    sspmv_standard,
    standard_plan,
    theoretical_ratio,
)
from .robust import (
    MatrixMarketError,
    NonFiniteError,
    PhaseExecutionError,
    ReproError,
    ValidationError,
    validate_csr,
)
from .sparse import COOMatrix, CSRMatrix

__version__ = "1.0.0"

__all__ = [
    "FBMPKOperator",
    "KernelCounter",
    "SSpMVProblem",
    "build_fbmpk_operator",
    "fbmpk_plan",
    "fbmpk_reference",
    "fbmpk_unfused",
    "mpk_standard",
    "split_ldu",
    "sspmv_fbmpk",
    "sspmv_standard",
    "standard_plan",
    "theoretical_ratio",
    "COOMatrix",
    "CSRMatrix",
    "ReproError",
    "ValidationError",
    "NonFiniteError",
    "MatrixMarketError",
    "PhaseExecutionError",
    "validate_csr",
    "__version__",
]
