"""Chebyshev polynomial iteration and filtering.

Chebyshev methods are the purest SSpMV consumers the paper cites: both
the semi-iterative solver (for linear systems) and the spectral filter
(for eigensolvers a la ChASE/EVSL, the paper's [18][19]) evaluate a
degree-``k`` polynomial in ``A`` applied to a vector — exactly the
``y = sum alpha_i A^i x`` form FBMPK accelerates.

Two evaluation paths are provided: the classic three-term recurrence
(one SpMV per degree — baseline) and monomial-coefficient evaluation
through :func:`repro.core.sspmv.sspmv_fbmpk` (``(k+1)/2`` matrix reads).
The monomial path is numerically safe only for moderate degrees
(coefficients grow as ``2^k``); degree <= 12 keeps both paths in
agreement to ~1e-8, which the tests pin down.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import obs
from ..core.fbmpk import FBMPKOperator
from ..core.sspmv import sspmv_fbmpk
from ..sparse.csr import CSRMatrix

__all__ = [
    "chebyshev_coefficients_monomial",
    "chebyshev_apply_recurrence",
    "chebyshev_apply_fbmpk",
    "chebyshev_solve",
]


def chebyshev_coefficients_monomial(degree: int) -> np.ndarray:
    """Monomial coefficients of the Chebyshev polynomial ``T_degree``.

    Built from the recurrence ``T_{j+1}(t) = 2 t T_j(t) - T_{j-1}(t)``;
    returns an array ``c`` with ``T_degree(t) = sum c[i] t^i``.
    """
    if degree < 0:
        raise ValueError("degree must be non-negative")
    t_prev = np.zeros(degree + 1)
    t_prev[0] = 1.0  # T_0 = 1
    if degree == 0:
        return t_prev
    t_cur = np.zeros(degree + 1)
    t_cur[1] = 1.0  # T_1 = t
    for _ in range(degree - 1):
        t_next = np.zeros(degree + 1)
        t_next[1:] = 2.0 * t_cur[:-1]
        t_next -= t_prev
        t_prev, t_cur = t_cur, t_next
    return t_cur


def _scaled_operator_coeffs(coeffs_t: np.ndarray, lo: float,
                            hi: float) -> np.ndarray:
    """Rewrite polynomial coefficients from the scaled variable
    ``t = (2 A - (hi+lo) I) / (hi - lo)`` to monomials in ``A``."""
    c = np.asarray(coeffs_t, dtype=np.float64)
    k = c.shape[0] - 1
    alpha = 2.0 / (hi - lo)
    beta = -(hi + lo) / (hi - lo)
    # Expand sum c_j (alpha A + beta)^j by binomial accumulation.
    out = np.zeros(k + 1)
    basis = np.zeros(k + 1)
    basis[0] = 1.0  # (alpha A + beta)^0
    out += c[0] * basis
    for j in range(1, k + 1):
        nxt = np.zeros(k + 1)
        nxt[1:] = alpha * basis[:-1]
        nxt += beta * basis
        basis = nxt
        out += c[j] * basis
    return out


def chebyshev_apply_recurrence(
    a: CSRMatrix,
    x: np.ndarray,
    degree: int,
    interval: Tuple[float, float],
) -> np.ndarray:
    """Apply the Chebyshev filter ``T_degree(scaled A) x`` with the
    classic three-term recurrence — one full SpMV per degree (the
    baseline pipeline)."""
    lo, hi = interval
    if hi <= lo:
        raise ValueError("interval must satisfy lo < hi")
    x = np.asarray(x, dtype=np.float64)
    alpha = 2.0 / (hi - lo)
    beta = -(hi + lo) / (hi - lo)

    def scaled(v: np.ndarray) -> np.ndarray:
        return alpha * a.matvec(v) + beta * v

    t_prev = x.copy()
    if degree == 0:
        return t_prev
    t_cur = scaled(x)
    for _ in range(degree - 1):
        t_prev, t_cur = t_cur, 2.0 * scaled(t_cur) - t_prev
    return t_cur


def chebyshev_apply_fbmpk(
    op: FBMPKOperator,
    x: np.ndarray,
    degree: int,
    interval: Tuple[float, float],
) -> np.ndarray:
    """Apply the same filter through FBMPK's fused pipeline: the filter's
    monomial coefficients feed one ``sum alpha_i A^i x`` evaluation with
    ``~(degree+1)/2`` matrix reads."""
    lo, hi = interval
    if hi <= lo:
        raise ValueError("interval must satisfy lo < hi")
    coeffs_t = chebyshev_coefficients_monomial(degree)
    alphas = _scaled_operator_coeffs(coeffs_t, lo, hi)
    return sspmv_fbmpk(op, x, alphas)


def chebyshev_solve(
    a: CSRMatrix,
    b: np.ndarray,
    eig_bounds: Tuple[float, float],
    tol: float = 1e-8,
    max_iter: int = 1000,
    x0: Optional[np.ndarray] = None,
    tuned: bool = False,
    plan_cache_dir=None,
) -> Tuple[np.ndarray, int, bool]:
    """Chebyshev semi-iteration for SPD ``A x = b``.

    ``eig_bounds = (lambda_min, lambda_max)`` must enclose the spectrum
    (see :func:`repro.solvers.power.gershgorin_bounds`).  ``tuned=True``
    routes the per-iteration SpMV through the plan selected by
    :func:`repro.tune.tuned_matvec` (cached under ``plan_cache_dir``);
    the tuner's bit-identity gate keeps the iterate sequence unchanged.
    Returns ``(x, iterations, converged)``.
    """
    lo, hi = eig_bounds
    if not (0 < lo < hi):
        raise ValueError("need 0 < lambda_min < lambda_max for SPD solve")
    if tuned:
        from ..tune import tuned_matvec
        matvec = tuned_matvec(a, cache=plan_cache_dir)
    else:
        matvec = a.matvec
    b = np.asarray(b, dtype=np.float64)
    x = np.zeros_like(b) if x0 is None else np.asarray(x0, np.float64).copy()
    theta = (hi + lo) / 2.0
    delta = (hi - lo) / 2.0
    sigma1 = theta / delta
    rho = 1.0 / sigma1
    with obs.span("solver.chebyshev", n=b.shape[0]):
        r = b - matvec(x)
        d = r / theta
        b_norm = float(np.linalg.norm(b)) or 1.0
        for it in range(1, max_iter + 1):
            x += d
            r -= matvec(d)
            res = float(np.linalg.norm(r))
            obs.event("solver.residual", solver="chebyshev", iteration=it,
                      residual=res)
            if res <= tol * b_norm:
                _record_chebyshev(it, res, True)
                return x, it, True
            rho_new = 1.0 / (2.0 * sigma1 - rho)
            d = rho_new * rho * d + (2.0 * rho_new / delta) * r
            rho = rho_new
        _record_chebyshev(max_iter, float(np.linalg.norm(r)), False)
    return x, max_iter, False


def _record_chebyshev(iterations: int, residual: float,
                      converged: bool) -> None:
    """Metrics of one finished Chebyshev solve (no-op when telemetry is
    off); the span/event stream is emitted inline by the solver."""
    if obs.current() is None:
        return
    obs.add_counter("solver.chebyshev.runs")
    obs.add_counter("solver.chebyshev.iterations", iterations)
    obs.set_gauge("solver.chebyshev.final_residual", residual)
    status = "converged" if converged else "max_iter"
    obs.add_counter(f"solver.chebyshev.status.{status}")
