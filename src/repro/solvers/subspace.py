"""Block subspace iteration through the FBMPK block kernel.

Subspace (simultaneous/orthogonal) iteration computes the dominant
``m``-dimensional invariant subspace by repeatedly applying ``A^s`` to a
block of vectors and re-orthonormalising — the block analogue of the
Chebyshev-filtered eigensolvers the paper cites ([18], [19]).  The
block power step uses :meth:`FBMPKOperator.power_block`, so one pass of
the matrix advances *every* basis vector by one power: matrix reads per
outer step are ``~(s+1)/2`` instead of ``m * s``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.fbmpk import FBMPKOperator, build_fbmpk_operator
from ..sparse.csr import CSRMatrix

__all__ = ["subspace_iteration"]


def subspace_iteration(
    a: CSRMatrix,
    n_eigs: int,
    s: int = 2,
    tol: float = 1e-9,
    max_outer: int = 500,
    seed: int = 0,
    operator: Optional[FBMPKOperator] = None,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Dominant eigenpairs of symmetric ``A`` by block power iteration.

    Parameters
    ----------
    a:
        Symmetric matrix.
    n_eigs:
        Number of dominant (largest ``|lambda|``) eigenpairs to compute.
    s:
        Powers applied per outer step (the MPK depth).
    operator:
        Optional prebuilt FBMPK operator (shares preprocessing).

    Returns ``(eigenvalues, eigenvectors, outer_steps)`` with the
    eigenvalues of largest magnitude in descending ``|lambda|`` order,
    refined by Rayleigh-Ritz on the iterated block.
    """
    if n_eigs < 1 or n_eigs > a.n_rows:
        raise ValueError("need 1 <= n_eigs <= n")
    if s < 1:
        raise ValueError("s must be positive")
    op = operator if operator is not None else \
        build_fbmpk_operator(a, strategy="abmc", block_size=1)
    rng = np.random.default_rng(seed)
    # Oversampled block for reliable separation of the wanted pairs.
    m = min(n_eigs + 2, a.n_rows)
    V, _ = np.linalg.qr(rng.standard_normal((a.n_rows, m)))
    prev = np.zeros(n_eigs)
    for outer in range(1, max_outer + 1):
        V = op.power_block(V, s)
        V, _ = np.linalg.qr(V)
        # Rayleigh-Ritz projection.
        AV = np.column_stack([a.matvec(V[:, j]) for j in range(m)])
        H = V.T @ AV
        H = 0.5 * (H + H.T)
        evals, evecs = np.linalg.eigh(H)
        order = np.argsort(-np.abs(evals))
        ritz = evals[order][:n_eigs]
        if np.abs(ritz - prev).max() <= tol * max(np.abs(ritz).max(), 1.0):
            V = V @ evecs[:, order]
            return ritz, V[:, :n_eigs], outer
        prev = ritz
        # Rotate the basis towards the Ritz vectors for faster settling.
        V = V @ evecs[:, order]
    return prev, V[:, :n_eigs], max_outer
