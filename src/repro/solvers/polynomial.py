"""Polynomial preconditioning through the FBMPK pipeline.

A polynomial preconditioner applies ``M^{-1} = p(A)`` with a fixed,
low-degree polynomial ``p`` approximating ``A^{-1}`` — every application
is a ``y = sum alpha_i A^i r`` evaluation on the *same* matrix, i.e.
precisely the SSpMV pattern FBMPK halves the matrix reads of.  Combined
with the one-off preprocessing amortised over the whole solve, this is
the solver-level payoff of the paper's kernel.

Two classic polynomial choices:

* **Neumann series**: for ``A = D(I - N)`` (Jacobi splitting),
  ``A^{-1} ~ (I + N + ... + N^m) D^{-1}``; valid when the Jacobi
  iteration matrix has spectral radius < 1 (diagonally dominant A —
  which this library's generators guarantee).
* **Chebyshev**: the minimax polynomial of ``1/lambda`` over a spectral
  interval ``[lo, hi]``, built from the Chebyshev recurrence; the
  standard high-quality polynomial preconditioner for SPD systems.

Both reduce to a coefficient vector in ``A`` that
:func:`repro.core.sspmv.sspmv_fbmpk` evaluates; the scaled-coefficient
expansion keeps everything in plain monomials.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.fbmpk import FBMPKOperator, build_fbmpk_operator
from ..core.sspmv import sspmv_fbmpk
from ..sparse.csr import CSRMatrix

__all__ = ["NeumannPreconditioner", "chebyshev_inverse_coefficients",
           "PolynomialPreconditioner"]


def chebyshev_inverse_coefficients(degree: int, lo: float,
                                   hi: float) -> np.ndarray:
    """Monomial coefficients of the degree-``degree`` Chebyshev
    approximation of ``1/t`` on ``[lo, hi]`` (0 < lo < hi).

    Built by interpolating ``1/t`` at the Chebyshev nodes of the
    interval and converting to monomials — numerically adequate for the
    low degrees (<= ~10) used in preconditioning.
    """
    if not (0 < lo < hi):
        raise ValueError("need 0 < lo < hi")
    if degree < 0:
        raise ValueError("degree must be non-negative")
    js = np.arange(degree + 1)
    nodes = np.cos((2 * js + 1) * np.pi / (2 * (degree + 1)))
    t = 0.5 * (hi + lo) + 0.5 * (hi - lo) * nodes
    coeffs_desc = np.polyfit(t, 1.0 / t, degree)
    return coeffs_desc[::-1].copy()  # ascending order


class PolynomialPreconditioner:
    """``M^{-1} r = p(A) r`` with a fixed coefficient vector, evaluated
    through FBMPK.

    Parameters
    ----------
    a:
        System matrix (used to build the operator when one is not
        supplied).
    coefficients:
        Ascending monomial coefficients of ``p``.
    operator:
        Optional prebuilt :class:`FBMPKOperator` to share preprocessing
        with other consumers (MPK calls, SYMGS, ...).
    """

    def __init__(self, a: Optional[CSRMatrix] = None,
                 coefficients=None,
                 operator: Optional[FBMPKOperator] = None) -> None:
        if coefficients is None:
            raise ValueError("coefficients are required")
        self.alphas = np.asarray(coefficients, dtype=np.float64)
        if self.alphas.ndim != 1 or self.alphas.shape[0] == 0:
            raise ValueError("coefficients must be a non-empty 1-D array")
        if operator is None:
            if a is None:
                raise ValueError("provide a matrix or an operator")
            operator = build_fbmpk_operator(a, strategy="abmc",
                                            block_size=1)
        self.op = operator

    @property
    def degree(self) -> int:
        """Polynomial degree."""
        return int(self.alphas.shape[0]) - 1

    def matrix_reads_per_apply(self) -> float:
        """Full-matrix reads per application through FBMPK
        (``~(degree+1)/2``) versus ``degree`` for the plain pipeline."""
        k = self.degree
        return (k + 1) / 2 if k else 0.0

    def apply(self, r: np.ndarray) -> np.ndarray:
        """Evaluate ``p(A) r``."""
        return sspmv_fbmpk(self.op, r, self.alphas)

    __call__ = apply


class NeumannPreconditioner(PolynomialPreconditioner):
    """Truncated Neumann-series preconditioner over the Jacobi splitting.

    ``M^{-1} = (I + N + ... + N^m) D^{-1}`` with ``N = I - D^{-1} A``.
    Implemented by building the FBMPK operator of the *scaled* matrix
    ``B = D^{-1} A`` and expanding ``(I + (I-B) + ... + (I-B)^m)`` into
    monomials of ``B``; the diagonal solve is applied up front.
    """

    def __init__(self, a: CSRMatrix, degree: int = 3) -> None:
        if degree < 0:
            raise ValueError("degree must be non-negative")
        d = a.diagonal()
        if (d == 0).any():
            raise ValueError("Neumann preconditioning needs a full diagonal")
        # B = D^{-1} A (scale each row).
        rows = np.repeat(np.arange(a.n_rows, dtype=np.int64), a.row_nnz())
        scaled = CSRMatrix(a.indptr.copy(), a.indices.copy(),
                           a.data / d[rows], a.shape, check=False)
        # sum_{j=0..m} (I - B)^j = sum_i c_i B^i by binomial expansion.
        coeffs = np.zeros(degree + 1)
        for j in range(degree + 1):
            # (I - B)^j = sum_i C(j, i) (-1)^i B^i
            for i in range(j + 1):
                coeffs[i] += (-1.0) ** i * _binom(j, i)
        super().__init__(a=scaled, coefficients=coeffs)
        self._dinv = 1.0 / d

    def apply(self, r: np.ndarray) -> np.ndarray:
        """``(sum (I-B)^j) D^{-1} r``."""
        return sspmv_fbmpk(self.op, self._dinv * np.asarray(r), self.alphas)

    __call__ = apply


def _binom(n: int, k: int) -> float:
    from math import comb

    return float(comb(n, k))
