"""Classic stationary iterations: Richardson, Jacobi, Gauss-Seidel.

The baseline relaxation methods SYMGS and the polynomial smoothers
generalise.  They share the ``A = L + D + U`` partition with FBMPK and
serve as reference smoothers/preconditioners and as teaching-grade
comparisons in the examples.  Each returns the iterate history length
and convergence flag in the same shape as the Krylov solvers.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.partition import TriangularPartition, split_ldu
from ..sparse.csr import CSRMatrix

__all__ = ["richardson", "jacobi", "gauss_seidel", "spectral_radius_jacobi"]


def _prepare(a: CSRMatrix, b: np.ndarray, x0: Optional[np.ndarray]):
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (a.n_rows,):
        raise ValueError("right-hand side dimension mismatch")
    x = np.zeros(a.n_rows) if x0 is None \
        else np.asarray(x0, dtype=np.float64).copy()
    b_norm = float(np.linalg.norm(b)) or 1.0
    return b, x, b_norm


def richardson(a: CSRMatrix, b: np.ndarray, omega: float,
               x0: Optional[np.ndarray] = None, tol: float = 1e-8,
               max_iter: int = 10_000) -> Tuple[np.ndarray, int, bool]:
    """Damped Richardson iteration ``x <- x + omega (b - A x)``.

    Converges for SPD ``A`` when ``0 < omega < 2 / lambda_max``.
    """
    if omega <= 0:
        raise ValueError("omega must be positive")
    b, x, b_norm = _prepare(a, b, x0)
    for it in range(1, max_iter + 1):
        r = b - a.matvec(x)
        if float(np.linalg.norm(r)) <= tol * b_norm:
            return x, it - 1, True
        x += omega * r
    return x, max_iter, float(np.linalg.norm(b - a.matvec(x))) \
        <= tol * b_norm


def jacobi(a: CSRMatrix, b: np.ndarray, omega: float = 1.0,
           x0: Optional[np.ndarray] = None, tol: float = 1e-8,
           max_iter: int = 10_000) -> Tuple[np.ndarray, int, bool]:
    """(Weighted) Jacobi iteration ``x <- x + omega D^{-1} (b - A x)``.

    Converges when the Jacobi iteration matrix has spectral radius < 1
    (e.g. strictly diagonally dominant ``A``).
    """
    d = a.diagonal()
    if (d == 0).any():
        raise ValueError("Jacobi needs a full nonzero diagonal")
    b, x, b_norm = _prepare(a, b, x0)
    for it in range(1, max_iter + 1):
        r = b - a.matvec(x)
        if float(np.linalg.norm(r)) <= tol * b_norm:
            return x, it - 1, True
        x += omega * r / d
    return x, max_iter, float(np.linalg.norm(b - a.matvec(x))) \
        <= tol * b_norm


def gauss_seidel(a: CSRMatrix, b: np.ndarray,
                 x0: Optional[np.ndarray] = None, tol: float = 1e-8,
                 max_iter: int = 10_000,
                 part: Optional[TriangularPartition] = None
                 ) -> Tuple[np.ndarray, int, bool]:
    """Forward Gauss-Seidel sweeps over the ``L + D + U`` partition.

    One sweep updates rows top-down with the latest values — the forward
    half of SYMGS.  ``part`` may be supplied to reuse an existing split.
    """
    part = part if part is not None else split_ldu(a)
    if (part.diag == 0).any():
        raise ValueError("Gauss-Seidel needs a full nonzero diagonal")
    b, x, b_norm = _prepare(a, b, x0)
    L, U, d = part.lower, part.upper, part.diag
    for it in range(1, max_iter + 1):
        if float(np.linalg.norm(b - a.matvec(x))) <= tol * b_norm:
            return x, it - 1, True
        for i in range(part.n):
            acc = b[i]
            for p in range(L.indptr[i], L.indptr[i + 1]):
                acc -= L.data[p] * x[L.indices[p]]
            for p in range(U.indptr[i], U.indptr[i + 1]):
                acc -= U.data[p] * x[U.indices[p]]
            x[i] = acc / d[i]
    return x, max_iter, float(np.linalg.norm(b - a.matvec(x))) \
        <= tol * b_norm


def spectral_radius_jacobi(a: CSRMatrix, iterations: int = 200,
                           seed: int = 0) -> float:
    """Estimate ``rho(I - D^{-1} A)`` (the Jacobi convergence factor) by
    power iteration on the iteration matrix.

    < 1 guarantees Jacobi (and Neumann preconditioning) converges.
    """
    d = a.diagonal()
    if (d == 0).any():
        raise ValueError("needs a full nonzero diagonal")
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(a.n_rows)
    v /= np.linalg.norm(v)
    rho = 0.0
    for _ in range(iterations):
        w = v - a.matvec(v) / d
        norm = float(np.linalg.norm(w))
        if norm == 0.0:
            return 0.0
        rho = norm
        v = w / norm
    return rho
