"""Application-level solvers consuming the MPK/SSpMV kernels.

The three workload classes the paper motivates FBMPK with (Section I):
eigenvalue methods (power iteration, Lanczos, Chebyshev filters), linear
solvers (CG, Chebyshev semi-iteration, s-step Krylov bases) and
multigrid (polynomial-smoothed two-level V-cycles).
"""

from .amg import AMGLevel, MultilevelAMG
from .cg import CGResult, conjugate_gradient
from .chebyshev import (
    chebyshev_apply_fbmpk,
    chebyshev_apply_recurrence,
    chebyshev_coefficients_monomial,
    chebyshev_solve,
)
from .krylov import KrylovResult, bicgstab, gmres
from .lanczos import lanczos, ritz_values, sstep_krylov_basis
from .multigrid import TwoLevelMultigrid, aggregate_rows
from .polynomial import (
    NeumannPreconditioner,
    PolynomialPreconditioner,
    chebyshev_inverse_coefficients,
)
from .stationary import (
    gauss_seidel,
    jacobi,
    richardson,
    spectral_radius_jacobi,
)
from .subspace import subspace_iteration
from .power import gershgorin_bounds, power_iteration, power_iteration_fbmpk
from .symgs import SymgsSmoother, symgs_reference, symgs_sweep

__all__ = [
    "AMGLevel",
    "MultilevelAMG",
    "CGResult",
    "conjugate_gradient",
    "chebyshev_apply_fbmpk",
    "chebyshev_apply_recurrence",
    "chebyshev_coefficients_monomial",
    "chebyshev_solve",
    "KrylovResult",
    "bicgstab",
    "gmres",
    "lanczos",
    "ritz_values",
    "sstep_krylov_basis",
    "TwoLevelMultigrid",
    "aggregate_rows",
    "NeumannPreconditioner",
    "PolynomialPreconditioner",
    "chebyshev_inverse_coefficients",
    "gershgorin_bounds",
    "power_iteration",
    "power_iteration_fbmpk",
    "SymgsSmoother",
    "symgs_reference",
    "symgs_sweep",
    "gauss_seidel",
    "jacobi",
    "richardson",
    "spectral_radius_jacobi",
    "subspace_iteration",
]
