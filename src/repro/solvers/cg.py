"""Conjugate Gradient solver.

The canonical "solving linear equations" workload the paper cites as an
MPK consumer (Section I).  Plain CG performs one SpMV per iteration; the
s-step variant in :mod:`repro.solvers.lanczos` replaces ``s`` of those
with one MPK call, which is where FBMPK's traffic saving lands in a real
solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..obs import instrument_solver
from ..robust.validate import ensure_finite
from ..sparse.csr import CSRMatrix

__all__ = ["CGResult", "conjugate_gradient"]


@dataclass
class CGResult:
    """Solution and convergence record of a CG run.

    ``status`` classifies how the run ended — the structured failure
    signal of the robustness layer:

    ``"converged"``
        ``||r|| <= tol * ||b||`` was reached (``converged`` is True).
    ``"max_iter"``
        The iteration budget ran out.
    ``"breakdown"``
        ``p^T A p <= 0`` — the matrix is not SPD (or the recurrence
        broke down); iterating further would be meaningless.
    ``"diverged"``
        The residual grew past ``divergence_limit * ||b||``.
    ``"non_finite"``
        A NaN/Inf appeared in the residual — garbage in the matrix,
        the right-hand side, or overflow en route.
    """

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: list
    status: str = "unknown"

    @property
    def final_residual(self) -> float:
        """Last recorded residual 2-norm."""
        return self.residual_norms[-1] if self.residual_norms else float("inf")


def _resolve_matvec(a: CSRMatrix, tuned: bool,
                    plan_cache_dir) -> Callable[[np.ndarray], np.ndarray]:
    """The solver's ``x -> A x``: the plain kernel, or the autotuned one
    (bit-identical by the tuner's acceptance gate, so ``tuned=True``
    cannot change a solve's iterates — only its wall clock)."""
    if not tuned:
        return a.matvec
    from ..tune import tuned_matvec
    return tuned_matvec(a, cache=plan_cache_dir)


@instrument_solver("cg")
def conjugate_gradient(
    a: CSRMatrix,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    max_iter: Optional[int] = None,
    preconditioner: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    check_finite: bool = False,
    divergence_limit: float = 1e8,
    tuned: bool = False,
    plan_cache_dir=None,
) -> CGResult:
    """Solve ``A x = b`` for symmetric positive-definite ``A``.

    ``preconditioner`` applies ``M^{-1}`` (e.g. a Jacobi or multigrid
    V-cycle from :mod:`repro.solvers.multigrid`); convergence is declared
    at ``||r|| <= tol * ||b||``.

    ``tuned=True`` routes every SpMV through the plan selected by
    :func:`repro.tune.tuned_matvec` (cached under ``plan_cache_dir``,
    default ``~/.cache/repro/plans``); the tuner only accepts plans
    bit-identical to ``a.matvec``, so the iterate sequence is unchanged.

    Robustness guards: ``check_finite=True`` validates the matrix
    payload, right-hand side and initial guess up front (raising
    :class:`~repro.robust.errors.NonFiniteError`); regardless of the
    flag, a NaN residual or one exceeding ``divergence_limit * ||b||``
    stops the iteration with ``status="non_finite"``/``"diverged"``
    instead of silently iterating on garbage.
    """
    matvec = _resolve_matvec(a, tuned, plan_cache_dir)
    b = np.asarray(b, dtype=np.float64)
    n = a.n_rows
    if b.shape != (n,):
        raise ValueError("right-hand side dimension mismatch")
    if check_finite:
        ensure_finite(a.data, "matrix values")
        ensure_finite(b, "right-hand side b")
        if x0 is not None:
            ensure_finite(x0, "initial guess x0")
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    max_iter = 10 * n if max_iter is None else max_iter
    r = b - matvec(x)
    z = preconditioner(r) if preconditioner else r
    p = z.copy()
    rz = float(r @ z)
    b_norm = float(np.linalg.norm(b)) or 1.0
    norms = [float(np.linalg.norm(r))]
    if not np.isfinite(norms[0]):
        return CGResult(x=x, iterations=0, converged=False,
                        residual_norms=norms, status="non_finite")
    if norms[0] <= tol * b_norm:
        return CGResult(x=x, iterations=0, converged=True,
                        residual_norms=norms, status="converged")
    for it in range(1, max_iter + 1):
        ap = matvec(p)
        pap = float(p @ ap)
        if not np.isfinite(pap):
            return CGResult(x=x, iterations=it - 1, converged=False,
                            residual_norms=norms, status="non_finite")
        if pap <= 0:
            # Not SPD (or breakdown): stop with what we have.
            return CGResult(x=x, iterations=it - 1, converged=False,
                            residual_norms=norms, status="breakdown")
        alpha = rz / pap
        x += alpha * p
        r -= alpha * ap
        norms.append(float(np.linalg.norm(r)))
        if not np.isfinite(norms[-1]):
            return CGResult(x=x, iterations=it, converged=False,
                            residual_norms=norms, status="non_finite")
        if norms[-1] <= tol * b_norm:
            return CGResult(x=x, iterations=it, converged=True,
                            residual_norms=norms, status="converged")
        if norms[-1] > divergence_limit * b_norm:
            return CGResult(x=x, iterations=it, converged=False,
                            residual_norms=norms, status="diverged")
        z = preconditioner(r) if preconditioner else r
        rz_new = float(r @ z)
        p = z + (rz_new / rz) * p
        rz = rz_new
    return CGResult(x=x, iterations=max_iter, converged=False,
                    residual_norms=norms, status="max_iter")
