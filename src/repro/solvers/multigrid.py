"""Two-level algebraic multigrid with polynomial smoothing.

Multigrid is the paper's third named MPK consumer (Section I, [22]): the
smoother applies a low-degree polynomial in ``A`` to the error — an
SSpMV — on every visit to every level.  This module builds a small
aggregation-based two-level hierarchy sufficient to demonstrate and test
that pipeline: Jacobi or Chebyshev smoothing, piecewise-constant
aggregation transfer, dense coarse solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional, Tuple

import numpy as np

from ..sparse.csr import CSRMatrix
from .power import gershgorin_bounds

__all__ = ["TwoLevelMultigrid", "aggregate_rows"]

Smoother = Literal["jacobi", "chebyshev"]


def aggregate_rows(n: int, aggregate_size: int) -> np.ndarray:
    """Piecewise-constant aggregation map: row ``i`` belongs to aggregate
    ``i // aggregate_size`` — the simplest AMG coarsening, adequate for
    the banded/grid matrices this library generates."""
    if aggregate_size < 1:
        raise ValueError("aggregate_size must be positive")
    return np.arange(n, dtype=np.int64) // aggregate_size


@dataclass
class _Hierarchy:
    aggregate_of: np.ndarray
    n_coarse: int
    coarse_dense: np.ndarray  # dense factorised coarse operator


class TwoLevelMultigrid:
    """V-cycle preconditioner ``M^{-1} ~ A^{-1}`` on two levels.

    Parameters
    ----------
    a:
        SPD fine-level matrix.
    aggregate_size:
        Rows per aggregate (coarsening factor).
    smoother:
        ``"jacobi"`` (weighted, omega=2/3) or ``"chebyshev"``
        (three-term recurrence over the upper spectrum — the polynomial
        smoother that maps onto SSpMV).
    pre_steps, post_steps:
        Smoothing applications before/after coarse correction.
    """

    def __init__(
        self,
        a: CSRMatrix,
        aggregate_size: int = 8,
        smoother: Smoother = "chebyshev",
        pre_steps: int = 2,
        post_steps: int = 2,
    ) -> None:
        if a.shape[0] != a.shape[1]:
            raise ValueError("multigrid requires a square matrix")
        self.a = a
        self.smoother = smoother
        self.pre_steps = pre_steps
        self.post_steps = post_steps
        self.diag = a.diagonal()
        if (self.diag == 0).any():
            raise ValueError("zero diagonal entry; cannot smooth")
        lo, hi = gershgorin_bounds(a)
        # Chebyshev smoothing targets the oscillatory upper spectrum.
        self._cheb_interval = (max(hi / 10.0, 1e-12), max(hi, 1e-12))
        n = a.n_rows
        agg = aggregate_rows(n, aggregate_size)
        n_coarse = int(agg.max()) + 1
        coarse = self._galerkin(agg, n_coarse)
        self._h = _Hierarchy(aggregate_of=agg, n_coarse=n_coarse,
                             coarse_dense=coarse)

    def _galerkin(self, agg: np.ndarray, n_coarse: int) -> np.ndarray:
        """Coarse operator ``P^T A P`` for piecewise-constant ``P``."""
        n = self.a.n_rows
        rows = np.repeat(np.arange(n, dtype=np.int64), self.a.row_nnz())
        coarse = np.zeros((n_coarse, n_coarse))
        np.add.at(coarse, (agg[rows], agg[self.a.indices]), self.a.data)
        return coarse

    def _smooth(self, x: np.ndarray, b: np.ndarray, steps: int) -> np.ndarray:
        if self.smoother == "jacobi":
            omega = 2.0 / 3.0
            for _ in range(steps):
                x = x + omega * (b - self.a.matvec(x)) / self.diag
            return x
        # Chebyshev: each application is a degree-`steps` polynomial in A
        # applied to the residual — an SSpMV pattern.
        lo, hi = self._cheb_interval
        theta = (hi + lo) / 2.0
        delta = (hi - lo) / 2.0
        sigma1 = theta / delta
        rho = 1.0 / sigma1
        r = b - self.a.matvec(x)
        d = r / theta
        for _ in range(steps):
            x = x + d
            r = r - self.a.matvec(d)
            rho_new = 1.0 / (2.0 * sigma1 - rho)
            d = rho_new * rho * d + (2.0 * rho_new / delta) * r
            rho = rho_new
        return x

    def restrict(self, r: np.ndarray) -> np.ndarray:
        """``P^T r``: sum fine residuals within each aggregate."""
        out = np.zeros(self._h.n_coarse)
        np.add.at(out, self._h.aggregate_of, r)
        return out

    def prolong(self, e_c: np.ndarray) -> np.ndarray:
        """``P e_c``: inject the coarse correction into fine rows."""
        return np.asarray(e_c)[self._h.aggregate_of]

    def vcycle(self, b: np.ndarray, x0: Optional[np.ndarray] = None) -> np.ndarray:
        """One V(pre, post)-cycle for ``A x = b``."""
        b = np.asarray(b, dtype=np.float64)
        x = np.zeros_like(b) if x0 is None else np.asarray(x0, np.float64).copy()
        x = self._smooth(x, b, self.pre_steps)
        r = b - self.a.matvec(x)
        e_c = np.linalg.solve(self._h.coarse_dense, self.restrict(r))
        x = x + self.prolong(e_c)
        return self._smooth(x, b, self.post_steps)

    def solve(self, b: np.ndarray, tol: float = 1e-8,
              max_cycles: int = 200) -> Tuple[np.ndarray, int, bool]:
        """Stationary V-cycle iteration until ``||r|| <= tol ||b||``."""
        b = np.asarray(b, dtype=np.float64)
        x = np.zeros_like(b)
        b_norm = float(np.linalg.norm(b)) or 1.0
        for it in range(1, max_cycles + 1):
            x = self.vcycle(b, x)
            if float(np.linalg.norm(b - self.a.matvec(x))) <= tol * b_norm:
                return x, it, True
        return x, max_cycles, False

    def as_preconditioner(self):
        """Adapter for :func:`repro.solvers.cg.conjugate_gradient`'s
        ``preconditioner`` argument (applies one V-cycle to a residual)."""
        def apply(r: np.ndarray) -> np.ndarray:
            return self.vcycle(r)

        return apply
