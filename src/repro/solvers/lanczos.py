"""Lanczos tridiagonalisation and s-step Krylov basis generation.

The s-step Krylov methods of the paper's Section VI ([46]-[48]) batch
``s`` basis extensions into one matrix-powers computation — the setting
where an MPK kernel replaces ``s`` separate SpMVs.  This module provides
both the classic one-SpMV-per-step Lanczos (with full reorthogonalisation
for robustness at test scale) and an s-step basis builder that obtains
the monomial block ``[q, Aq, ..., A^s q]`` from a single FBMPK call and
re-orthonormalises it.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.fbmpk import FBMPKOperator
from ..robust.validate import ensure_finite
from ..sparse.csr import CSRMatrix

__all__ = ["lanczos", "sstep_krylov_basis", "ritz_values"]


def lanczos(
    a: CSRMatrix,
    m: int,
    q0: Optional[np.ndarray] = None,
    seed: int = 0,
    reorthogonalize: bool = True,
    check_finite: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``m``-step Lanczos on symmetric ``A``.

    Returns ``(Q, alpha, beta)``: ``Q`` is ``n x m'`` with orthonormal
    columns (``m' <= m``; early termination on breakdown), ``alpha`` the
    tridiagonal diagonal, ``beta`` the ``m' - 1`` off-diagonals.

    ``check_finite`` (on by default — Lanczos has no residual that would
    flag garbage later) raises
    :class:`~repro.robust.errors.NonFiniteError` the moment a NaN/Inf
    enters the recurrence, naming the offending step; otherwise a single
    bad matrix entry silently poisons every Ritz value.
    """
    n = a.n_rows
    q = (np.random.default_rng(seed).standard_normal(n)
         if q0 is None else np.asarray(q0, dtype=np.float64).copy())
    if check_finite:
        ensure_finite(q, "Lanczos start vector")
    q /= np.linalg.norm(q)
    qs = [q]
    alphas, betas = [], []
    for j in range(m):
        w = a.matvec(qs[j])
        if check_finite:
            ensure_finite(w, f"Lanczos iterate A q_{j}")
        alpha = float(qs[j] @ w)
        alphas.append(alpha)
        w -= alpha * qs[j]
        if j > 0:
            w -= betas[-1] * qs[j - 1]
        if reorthogonalize:
            for qi in qs:
                w -= (qi @ w) * qi
        beta = float(np.linalg.norm(w))
        if beta < 1e-12 or j == m - 1:
            break
        betas.append(beta)
        qs.append(w / beta)
    return np.stack(qs, axis=1), np.array(alphas), np.array(betas)


def sstep_krylov_basis(
    op: FBMPKOperator,
    q0: np.ndarray,
    s: int,
    check_finite: bool = False,
) -> np.ndarray:
    """Orthonormal basis of ``span{q0, A q0, ..., A^s q0}`` from one
    FBMPK call.

    The monomial block is collected through the iterate callback (no
    extra matrix reads) and orthonormalised by thin QR.  Returns an
    ``n x r`` matrix with ``r <= s + 1`` (rank deficiency trimmed, as
    monomial bases lose independence for large ``s``).

    ``check_finite`` is forwarded to :meth:`FBMPKOperator.power`, so a
    poisoned start vector or corrupt operator surfaces as a
    :class:`~repro.robust.errors.NonFiniteError` at the exact power
    instead of a silently garbage basis.
    """
    if s < 1:
        raise ValueError("s must be positive")
    q0 = np.asarray(q0, dtype=np.float64)
    block = np.empty((q0.shape[0], s + 1))
    block[:, 0] = q0 / np.linalg.norm(q0)

    def collect(i: int, xi: np.ndarray) -> None:
        block[:, i] = xi

    op.power(block[:, 0].copy(), s, on_iterate=collect,
             check_finite=check_finite)
    q_fact, r_fact = np.linalg.qr(block)
    # Trim columns whose diagonal R entry has collapsed (numerical rank).
    keep = np.abs(np.diag(r_fact)) > 1e-10 * max(abs(r_fact[0, 0]), 1e-300)
    return q_fact[:, keep]


def ritz_values(alpha: np.ndarray, beta: np.ndarray) -> np.ndarray:
    """Eigenvalues of the Lanczos tridiagonal (the Ritz values)."""
    m = alpha.shape[0]
    t = np.diag(alpha)
    if m > 1 and beta.size:
        b = beta[: m - 1]
        t += np.diag(b, 1) + np.diag(b, -1)
    return np.linalg.eigvalsh(t)
