"""Krylov solvers for general (unsymmetric) systems: GMRES and BiCGSTAB.

Two of the paper's evaluation matrices (``cage14``, ``ML_Geer``) are
unsymmetric, where CG does not apply; these are the standard Krylov
methods such systems are solved with — and both are SSpMV consumers (one
or two SpMVs on the same ``A`` per iteration, restarted GMRES's Arnoldi
loop being a prime candidate for matrix-powers batching).

Implementations follow the textbook formulations (Saad, "Iterative
Methods for Sparse Linear Systems" — the paper's ref [20]):

* :func:`gmres` — restarted GMRES(m) with Arnoldi via modified
  Gram-Schmidt and Givens-rotation least squares.
* :func:`bicgstab` — BiCGSTAB with the usual rho/omega breakdown guards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..obs import instrument_solver
from ..robust.validate import ensure_finite
from ..sparse.csr import CSRMatrix

__all__ = ["KrylovResult", "gmres", "bicgstab"]


@dataclass
class KrylovResult:
    """Solution and convergence record of a Krylov run.

    ``status`` is the structured failure signal: ``"converged"``,
    ``"max_iter"``, ``"breakdown"`` (rho/omega/denominator collapse in
    BiCGSTAB), ``"diverged"`` (residual blew past the divergence limit),
    or ``"non_finite"`` (NaN/Inf residual).
    """

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: List[float]
    status: str = "unknown"

    @property
    def final_residual(self) -> float:
        """Last recorded residual 2-norm."""
        return self.residual_norms[-1] if self.residual_norms else float("inf")


def _as_apply(a, tuned: bool = False,
              plan_cache_dir=None) -> Callable[[np.ndarray], np.ndarray]:
    if isinstance(a, CSRMatrix):
        if tuned:
            # Bit-identical to a.matvec by the tuner's acceptance gate,
            # so the Krylov iterate sequence is unchanged.
            from ..tune import tuned_matvec
            return tuned_matvec(a, cache=plan_cache_dir)
        return a.matvec
    if callable(a):
        return a  # tuning needs the matrix structure; callables pass through
    raise TypeError("operator must be a CSRMatrix or a callable")


@instrument_solver("gmres")
def gmres(
    a,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    restart: int = 30,
    tol: float = 1e-8,
    max_iter: Optional[int] = None,
    check_finite: bool = False,
    tuned: bool = False,
    plan_cache_dir=None,
) -> KrylovResult:
    """Restarted GMRES(m) for ``A x = b`` (A square, possibly
    unsymmetric).

    ``a`` may be a :class:`CSRMatrix` or any callable ``x -> A x``.
    Convergence is ``||r|| <= tol * ||b||``; ``max_iter`` counts total
    inner iterations (default ``10 n``).  ``tuned=True`` routes SpMVs
    through :func:`repro.tune.tuned_matvec` when ``a`` is a matrix
    (ignored for callables); the gate keeps iterates bit-identical.
    A NaN/Inf residual (at a restart head or inside the Arnoldi loop)
    returns ``status="non_finite"`` instead of iterating on garbage;
    ``check_finite=True`` additionally validates the inputs up front.
    """
    apply_a = _as_apply(a, tuned=tuned, plan_cache_dir=plan_cache_dir)
    b = np.asarray(b, dtype=np.float64)
    n = b.shape[0]
    if restart < 1:
        raise ValueError("restart must be positive")
    if check_finite:
        if isinstance(a, CSRMatrix):
            ensure_finite(a.data, "matrix values")
        ensure_finite(b, "right-hand side b")
        if x0 is not None:
            ensure_finite(x0, "initial guess x0")
    max_iter = 10 * n if max_iter is None else max_iter
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    b_norm = float(np.linalg.norm(b)) or 1.0
    norms: List[float] = []
    total = 0
    while True:
        r = b - apply_a(x)
        beta = float(np.linalg.norm(r))
        norms.append(beta)
        if not np.isfinite(beta):
            return KrylovResult(x=x, iterations=total, converged=False,
                                residual_norms=norms, status="non_finite")
        if beta <= tol * b_norm:
            return KrylovResult(x=x, iterations=total, converged=True,
                                residual_norms=norms, status="converged")
        if total >= max_iter:
            return KrylovResult(x=x, iterations=total, converged=False,
                                residual_norms=norms, status="max_iter")
        m = restart
        # Arnoldi with modified Gram-Schmidt.
        V = np.zeros((n, m + 1))
        H = np.zeros((m + 1, m))
        cs = np.zeros(m)
        sn = np.zeros(m)
        g = np.zeros(m + 1)
        V[:, 0] = r / beta
        g[0] = beta
        j_done = 0
        for j in range(m):
            if total >= max_iter:
                break
            w = apply_a(V[:, j])
            total += 1
            for i in range(j + 1):
                H[i, j] = float(V[:, i] @ w)
                w -= H[i, j] * V[:, i]
            H[j + 1, j] = float(np.linalg.norm(w))
            if H[j + 1, j] > 1e-14:
                V[:, j + 1] = w / H[j + 1, j]
            # Apply the accumulated Givens rotations to the new column.
            for i in range(j):
                t = cs[i] * H[i, j] + sn[i] * H[i + 1, j]
                H[i + 1, j] = -sn[i] * H[i, j] + cs[i] * H[i + 1, j]
                H[i, j] = t
            # New rotation annihilating H[j+1, j].
            denom = float(np.hypot(H[j, j], H[j + 1, j])) or 1.0
            cs[j] = H[j, j] / denom
            sn[j] = H[j + 1, j] / denom
            H[j, j] = denom
            H[j + 1, j] = 0.0
            g[j + 1] = -sn[j] * g[j]
            g[j] = cs[j] * g[j]
            j_done = j + 1
            norms.append(abs(float(g[j + 1])))
            if norms[-1] <= tol * b_norm:
                break
            if H[j + 1, j] == 0.0 and abs(g[j + 1]) <= 1e-300:
                break  # lucky breakdown
        if j_done:
            y = np.linalg.solve(np.triu(H[:j_done, :j_done]), g[:j_done])
            x = x + V[:, :j_done] @ y
        if norms[-1] <= tol * b_norm:
            # Recompute the true residual on the next loop head; it also
            # terminates the outer loop.
            continue


@instrument_solver("bicgstab")
def bicgstab(
    a,
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    max_iter: Optional[int] = None,
    check_finite: bool = False,
    divergence_limit: float = 1e8,
    tuned: bool = False,
    plan_cache_dir=None,
) -> KrylovResult:
    """BiCGSTAB for ``A x = b`` (two SpMVs per iteration).

    Returns on convergence (``||r|| <= tol ||b||``), on the iteration
    budget (``status="max_iter"``), on rho/omega/denominator breakdown
    (``status="breakdown"``), on residual blow-up past
    ``divergence_limit * ||b||`` (``status="diverged"``), or on a NaN/Inf
    residual (``status="non_finite"``).  ``check_finite=True`` validates
    the inputs up front; ``tuned=True`` routes SpMVs through
    :func:`repro.tune.tuned_matvec` when ``a`` is a matrix (ignored for
    callables), keeping iterates bit-identical.
    """
    apply_a = _as_apply(a, tuned=tuned, plan_cache_dir=plan_cache_dir)
    b = np.asarray(b, dtype=np.float64)
    n = b.shape[0]
    if check_finite:
        if isinstance(a, CSRMatrix):
            ensure_finite(a.data, "matrix values")
        ensure_finite(b, "right-hand side b")
        if x0 is not None:
            ensure_finite(x0, "initial guess x0")
    max_iter = 10 * n if max_iter is None else max_iter
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    r = b - apply_a(x)
    r_hat = r.copy()
    rho = alpha = omega = 1.0
    v = np.zeros(n)
    p = np.zeros(n)
    b_norm = float(np.linalg.norm(b)) or 1.0
    norms = [float(np.linalg.norm(r))]
    if not np.isfinite(norms[0]):
        return KrylovResult(x=x, iterations=0, converged=False,
                            residual_norms=norms, status="non_finite")
    if norms[0] <= tol * b_norm:
        return KrylovResult(x=x, iterations=0, converged=True,
                            residual_norms=norms, status="converged")
    for it in range(1, max_iter + 1):
        rho_new = float(r_hat @ r)
        if not np.isfinite(rho_new):
            return KrylovResult(x=x, iterations=it - 1, converged=False,
                                residual_norms=norms, status="non_finite")
        if abs(rho_new) < 1e-300:
            return KrylovResult(x=x, iterations=it - 1, converged=False,
                                residual_norms=norms, status="breakdown")
        beta = (rho_new / rho) * (alpha / omega)
        rho = rho_new
        p = r + beta * (p - omega * v)
        v = apply_a(p)
        denom = float(r_hat @ v)
        if not np.isfinite(denom):
            return KrylovResult(x=x, iterations=it - 1, converged=False,
                                residual_norms=norms, status="non_finite")
        if abs(denom) < 1e-300:
            return KrylovResult(x=x, iterations=it - 1, converged=False,
                                residual_norms=norms, status="breakdown")
        alpha = rho / denom
        s = r - alpha * v
        if float(np.linalg.norm(s)) <= tol * b_norm:
            x += alpha * p
            norms.append(float(np.linalg.norm(s)))
            return KrylovResult(x=x, iterations=it, converged=True,
                                residual_norms=norms, status="converged")
        t = apply_a(s)
        tt = float(t @ t)
        if not np.isfinite(tt):
            return KrylovResult(x=x, iterations=it - 1, converged=False,
                                residual_norms=norms, status="non_finite")
        if tt < 1e-300:
            return KrylovResult(x=x, iterations=it - 1, converged=False,
                                residual_norms=norms, status="breakdown")
        omega = float(t @ s) / tt
        if abs(omega) < 1e-300:
            return KrylovResult(x=x, iterations=it - 1, converged=False,
                                residual_norms=norms, status="breakdown")
        x += alpha * p + omega * s
        r = s - omega * t
        norms.append(float(np.linalg.norm(r)))
        if not np.isfinite(norms[-1]):
            return KrylovResult(x=x, iterations=it, converged=False,
                                residual_norms=norms, status="non_finite")
        if norms[-1] <= tol * b_norm:
            return KrylovResult(x=x, iterations=it, converged=True,
                                residual_norms=norms, status="converged")
        if norms[-1] > divergence_limit * b_norm:
            return KrylovResult(x=x, iterations=it, converged=False,
                                residual_norms=norms, status="diverged")
    return KrylovResult(x=x, iterations=max_iter, converged=False,
                        residual_norms=norms, status="max_iter")
