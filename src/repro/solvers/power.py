"""Power iteration and spectral bounds.

Eigenvalue workloads are the paper's first-named MPK consumers
(Section I, [16]-[19]).  Power iteration applied in blocks of ``s``
multiplications per normalisation step is literally ``A^s x`` — an MPK
call — and :func:`gershgorin_bounds` supplies the spectral enclosures
the Chebyshev machinery needs.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.fbmpk import FBMPKOperator
from ..sparse.csr import CSRMatrix, reduce_rows

__all__ = ["gershgorin_bounds", "power_iteration", "power_iteration_fbmpk"]


def gershgorin_bounds(a: CSRMatrix) -> Tuple[float, float]:
    """Gershgorin enclosure of the spectrum: every eigenvalue lies in
    ``[min_i (a_ii - r_i), max_i (a_ii + r_i)]`` with ``r_i`` the
    off-diagonal absolute row sum."""
    n = a.n_rows
    if n == 0:
        return 0.0, 0.0
    rows = np.repeat(np.arange(n, dtype=np.int64), a.row_nnz())
    on_diag = rows == a.indices
    diag = np.zeros(n)
    np.add.at(diag, rows[on_diag], a.data[on_diag])
    radii = reduce_rows(np.where(on_diag, 0.0, np.abs(a.data)), a.indptr)
    return float((diag - radii).min()), float((diag + radii).max())


def power_iteration(
    a: CSRMatrix,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iter: int = 5000,
    seed: int = 0,
) -> Tuple[float, np.ndarray, int]:
    """Classic power iteration: one SpMV + normalisation per step.

    Returns ``(rayleigh_quotient, eigenvector, iterations)``.
    """
    n = a.n_rows
    x = (np.random.default_rng(seed).standard_normal(n)
         if x0 is None else np.asarray(x0, dtype=np.float64).copy())
    x /= np.linalg.norm(x)
    lam = 0.0
    for it in range(1, max_iter + 1):
        y = a.matvec(x)
        norm = float(np.linalg.norm(y))
        if norm == 0.0:
            return 0.0, x, it
        y /= norm
        lam_new = float(y @ a.matvec(y))
        if abs(lam_new - lam) <= tol * max(abs(lam_new), 1.0):
            return lam_new, y, it
        lam = lam_new
        x = y
    return lam, x, max_iter


def power_iteration_fbmpk(
    op: FBMPKOperator,
    a: CSRMatrix,
    s: int = 4,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iter: int = 2000,
    seed: int = 0,
) -> Tuple[float, np.ndarray, int]:
    """Blocked power iteration: ``A^s x`` per normalisation step through
    the FBMPK pipeline, so each step costs ``~(s+1)/2`` matrix reads
    instead of ``s``.

    ``max_iter`` counts *blocks*; the returned iteration count is in
    single-multiplication units for comparability.  Normalising only
    every ``s`` steps is safe here because the library's generator
    matrices are scaled to spectral radius <= 1.
    """
    if s < 1:
        raise ValueError("block size s must be positive")
    n = op.n
    x = (np.random.default_rng(seed).standard_normal(n)
         if x0 is None else np.asarray(x0, dtype=np.float64).copy())
    x /= np.linalg.norm(x)
    lam = 0.0
    for blk in range(1, max_iter + 1):
        y = op.power(x, s)
        norm = float(np.linalg.norm(y))
        if norm == 0.0:
            return 0.0, x, blk * s
        y /= norm
        lam_new = float(y @ a.matvec(y))
        if abs(lam_new - lam) <= tol * max(abs(lam_new), 1.0):
            return lam_new, y, blk * s
        lam = lam_new
        x = y
    return lam, x, max_iter * s
