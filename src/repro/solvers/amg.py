"""Multilevel aggregation AMG with V- and W-cycles.

Generalises :class:`repro.solvers.multigrid.TwoLevelMultigrid` to an
arbitrary hierarchy: levels are built by repeated piecewise-constant
aggregation with Galerkin coarse operators (computed with the library's
own SpGEMM), smoothing is weighted Jacobi or Chebyshev (the SSpMV
pattern), and the cycle index chooses V (gamma=1) or W (gamma=2)
recursion.  The coarsest level is solved densely.

This is the "multigrid methods" consumer of the paper's Section I at
production shape: every level visit applies a low-degree polynomial of
that level's matrix — a sequence of SpMVs on a reused matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Optional, Tuple

import numpy as np

from ..sparse.csr import CSRMatrix
from ..sparse.spgemm import spgemm
from .power import gershgorin_bounds

__all__ = ["MultilevelAMG", "AMGLevel"]

Smoother = Literal["jacobi", "chebyshev"]


def _aggregation_operator(n: int, aggregate_size: int) -> CSRMatrix:
    """Piecewise-constant prolongation ``P``: column ``j`` is the
    indicator of aggregate ``j``."""
    if n == 0:
        return CSRMatrix.zeros((0, 0))
    agg = np.arange(n, dtype=np.int64) // aggregate_size
    n_coarse = int(agg[-1]) + 1
    return CSRMatrix.from_coo_arrays(
        np.arange(n, dtype=np.int64), agg, np.ones(n), (n, n_coarse),
        sum_duplicates=False,
    )


@dataclass
class AMGLevel:
    """One level of the hierarchy."""

    a: CSRMatrix
    prolong: Optional[CSRMatrix]  # None on the coarsest level
    diag: np.ndarray
    cheb_interval: Tuple[float, float]


class MultilevelAMG:
    """Aggregation AMG hierarchy.

    Parameters
    ----------
    a:
        SPD fine-level matrix (full nonzero diagonal required).
    aggregate_size:
        Rows per aggregate at every coarsening step.
    max_levels:
        Hierarchy depth cap (including the fine level).
    coarse_size:
        Stop coarsening once a level is at most this many rows; that
        level is solved densely.
    smoother, pre_steps, post_steps:
        Smoothing configuration (see
        :class:`~repro.solvers.multigrid.TwoLevelMultigrid`).
    cycle:
        ``1`` for V-cycles, ``2`` for W-cycles.
    """

    def __init__(
        self,
        a: CSRMatrix,
        aggregate_size: int = 4,
        max_levels: int = 10,
        coarse_size: int = 64,
        smoother: Smoother = "jacobi",
        pre_steps: int = 1,
        post_steps: int = 1,
        cycle: int = 1,
    ) -> None:
        if a.shape[0] != a.shape[1]:
            raise ValueError("AMG requires a square matrix")
        if aggregate_size < 2:
            raise ValueError("aggregate_size must be >= 2")
        if cycle not in (1, 2):
            raise ValueError("cycle must be 1 (V) or 2 (W)")
        self.smoother = smoother
        self.pre_steps = pre_steps
        self.post_steps = post_steps
        self.cycle = cycle
        self.levels: List[AMGLevel] = []
        current = a
        for _ in range(max_levels - 1):
            diag = current.diagonal()
            if (diag == 0).any():
                raise ValueError("zero diagonal entry on a level")
            _, hi = gershgorin_bounds(current)
            interval = (max(hi / 10.0, 1e-12), max(hi, 1e-12))
            if current.n_rows <= coarse_size:
                break
            p = _aggregation_operator(current.n_rows, aggregate_size)
            coarse = spgemm(spgemm(p.transpose(), current), p)
            self.levels.append(AMGLevel(a=current, prolong=p, diag=diag,
                                        cheb_interval=interval))
            current = coarse
        diag = current.diagonal()
        if (diag == 0).any():
            raise ValueError("zero diagonal entry on the coarsest level")
        _, hi = gershgorin_bounds(current)
        self.levels.append(AMGLevel(
            a=current, prolong=None, diag=diag,
            cheb_interval=(max(hi / 10.0, 1e-12), max(hi, 1e-12))))
        self._coarse_dense = current.to_dense()

    @property
    def n_levels(self) -> int:
        """Hierarchy depth (>= 1)."""
        return len(self.levels)

    def operator_complexity(self) -> float:
        """Total stored entries across levels over the fine level's —
        the standard AMG memory metric."""
        fine = max(self.levels[0].a.nnz, 1)
        return sum(lv.a.nnz for lv in self.levels) / fine

    # -- smoothing -------------------------------------------------------
    def _smooth(self, level: AMGLevel, x: np.ndarray, b: np.ndarray,
                steps: int) -> np.ndarray:
        if steps <= 0:
            return x
        if self.smoother == "jacobi":
            omega = 2.0 / 3.0
            for _ in range(steps):
                x = x + omega * (b - level.a.matvec(x)) / level.diag
            return x
        lo, hi = level.cheb_interval
        theta = (hi + lo) / 2.0
        delta = (hi - lo) / 2.0
        sigma1 = theta / delta
        rho = 1.0 / sigma1
        r = b - level.a.matvec(x)
        d = r / theta
        for _ in range(steps):
            x = x + d
            r = r - level.a.matvec(d)
            rho_new = 1.0 / (2.0 * sigma1 - rho)
            d = rho_new * rho * d + (2.0 * rho_new / delta) * r
            rho = rho_new
        return x

    # -- cycles ----------------------------------------------------------
    def _cycle(self, idx: int, b: np.ndarray, x: np.ndarray) -> np.ndarray:
        level = self.levels[idx]
        if level.prolong is None:
            return np.linalg.solve(self._coarse_dense, b)
        x = self._smooth(level, x, b, self.pre_steps)
        r = b - level.a.matvec(x)
        r_c = level.prolong.transpose().matvec(r)
        e_c = np.zeros(r_c.shape[0])
        for _ in range(self.cycle):
            e_c = self._cycle(idx + 1, r_c, e_c)
        x = x + level.prolong.matvec(e_c)
        return self._smooth(level, x, b, self.post_steps)

    def vcycle(self, b: np.ndarray,
               x0: Optional[np.ndarray] = None) -> np.ndarray:
        """One multigrid cycle (V or W per the ``cycle`` index)."""
        b = np.asarray(b, dtype=np.float64)
        x = np.zeros_like(b) if x0 is None \
            else np.asarray(x0, dtype=np.float64).copy()
        return self._cycle(0, b, x)

    def solve(self, b: np.ndarray, tol: float = 1e-8,
              max_cycles: int = 200) -> Tuple[np.ndarray, int, bool]:
        """Stationary cycling to ``||r|| <= tol ||b||``."""
        b = np.asarray(b, dtype=np.float64)
        a = self.levels[0].a
        x = np.zeros_like(b)
        b_norm = float(np.linalg.norm(b)) or 1.0
        for it in range(1, max_cycles + 1):
            x = self.vcycle(b, x)
            if float(np.linalg.norm(b - a.matvec(x))) <= tol * b_norm:
                return x, it, True
        return x, max_cycles, False

    def as_preconditioner(self):
        """One cycle applied to a residual, for CG."""
        def apply(r: np.ndarray) -> np.ndarray:
            return self.vcycle(r)

        return apply
