"""Symmetric Gauss-Seidel (SYMGS) over the FBMPK partition.

Section VII observes that "the computation pattern of FBMPK is similar
to symmetric Gauss-Seidel (SYMGS)", the HPCG smoother whose blocking
strategy inspired the matrix partition (Section III-A cites [34]).  This
module makes the connection concrete: SYMGS runs over the *same*
``A = L + D + U`` split and the *same* ABMC colour structure as FBMPK —
a forward substitution sweep over ``L`` followed by a backward sweep
over ``U``, each parallelisable colour by colour.

Three implementations, all result-identical:

``symgs_reference``
    Row-by-row forward/backward Gauss-Seidel (pure Python) — the
    textbook algorithm, the semantic reference.
``symgs_sweep``
    Vectorised per-sweep-group execution using the FBMPK operator's
    machinery: within a group rows are independent, so each group is one
    fused triangular product, mirroring how the paper's SYMGS citations
    parallelise with multi-colouring.
``SymgsSmoother``
    Preprocessed, reusable smoother (for multigrid and preconditioned
    CG), built from the same :class:`~repro.core.fbmpk.FBMPKOperator`
    artefacts.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.fbmpk import FBMPKOperator, SweepGroups, build_fbmpk_operator
from ..core.partition import TriangularPartition
from ..sparse.csr import CSRMatrix

__all__ = ["symgs_reference", "symgs_sweep", "SymgsSmoother"]


def _require_nonzero_diag(diag: np.ndarray) -> None:
    if (diag == 0).any():
        raise ValueError("SYMGS requires a full nonzero diagonal")


def symgs_reference(part: TriangularPartition, b: np.ndarray,
                    x: Optional[np.ndarray] = None) -> np.ndarray:
    """One textbook SYMGS iteration for ``A x = b``.

    Forward Gauss-Seidel sweep (top-down, in-place) followed by the
    backward sweep (bottom-up): the direct analogue of FBMPK's
    forward/backward stages, with a solve against ``d`` where FBMPK has
    a multiply.
    """
    _require_nonzero_diag(part.diag)
    b = np.asarray(b, dtype=np.float64)
    n = part.n
    if b.shape != (n,):
        raise ValueError("right-hand side dimension mismatch")
    x = np.zeros(n) if x is None else np.asarray(x, dtype=np.float64).copy()
    L, U, d = part.lower, part.upper, part.diag
    # Forward sweep: x_i <- (b_i - L x - U x) / d_i, rows top-down.
    for i in range(n):
        acc = b[i]
        for p in range(L.indptr[i], L.indptr[i + 1]):
            acc -= L.data[p] * x[L.indices[p]]
        for p in range(U.indptr[i], U.indptr[i + 1]):
            acc -= U.data[p] * x[U.indices[p]]
        x[i] = acc / d[i]
    # Backward sweep: same update, rows bottom-up.
    for i in range(n - 1, -1, -1):
        acc = b[i]
        for p in range(L.indptr[i], L.indptr[i + 1]):
            acc -= L.data[p] * x[L.indices[p]]
        for p in range(U.indptr[i], U.indptr[i + 1]):
            acc -= U.data[p] * x[U.indices[p]]
        x[i] = acc / d[i]
    return x


def symgs_sweep(part: TriangularPartition, groups: SweepGroups,
                b: np.ndarray,
                x: Optional[np.ndarray] = None) -> np.ndarray:
    """One SYMGS iteration executed group by group (vectorised).

    Validity note: Gauss-Seidel's forward sweep needs *updated* values
    only from rows already processed; rows within one sweep group share
    no matrix entries, so processing groups in FBMPK's forward order
    yields exactly the sequential result when the groups come from a
    reordered-contiguous (ABMC) structure, and a *relaxation-equivalent*
    sweep otherwise.  The tests pin it against
    :func:`symgs_reference` for ABMC-ordered systems.
    """
    _require_nonzero_diag(part.diag)
    b = np.asarray(b, dtype=np.float64)
    n = part.n
    if b.shape != (n,):
        raise ValueError("right-hand side dimension mismatch")
    x = np.zeros(n) if x is None else np.asarray(x, dtype=np.float64).copy()
    L, U, d = part.lower, part.upper, part.diag
    for rows in groups.forward:
        acc = b[rows] - L.select_rows(rows).matvec(x) \
            - U.select_rows(rows).matvec(x)
        x[rows] = acc / d[rows]
    for rows in groups.backward:
        acc = b[rows] - L.select_rows(rows).matvec(x) \
            - U.select_rows(rows).matvec(x)
        x[rows] = acc / d[rows]
    return x


class SymgsSmoother:
    """Reusable SYMGS smoother sharing FBMPK's preprocessing.

    Built either from an existing :class:`FBMPKOperator` (reusing its
    partition, groups and permutation — the "same blocking algorithm
    reused across kernels" point the paper makes about HPCG) or directly
    from a matrix.
    """

    def __init__(self, a: Optional[CSRMatrix] = None,
                 operator: Optional[FBMPKOperator] = None) -> None:
        if operator is None:
            if a is None:
                raise ValueError("provide a matrix or an operator")
            operator = build_fbmpk_operator(a, strategy="abmc", block_size=1)
        _require_nonzero_diag(operator.part.diag)
        self.op = operator
        # Pre-extract the per-group triangle rows once (L and U both,
        # per sweep direction).
        part = operator.part
        self._fw = [
            (rows, part.lower.select_rows(rows), part.upper.select_rows(rows))
            for rows in operator.groups.forward
        ]
        self._bw = [
            (rows, part.lower.select_rows(rows), part.upper.select_rows(rows))
            for rows in operator.groups.backward
        ]

    @property
    def n(self) -> int:
        """System dimension."""
        return self.op.n

    def smooth(self, b: np.ndarray, x: Optional[np.ndarray] = None,
               iterations: int = 1) -> np.ndarray:
        """Apply ``iterations`` SYMGS sweeps to ``A x = b``.

        Inputs/outputs are in the original numbering; the ABMC
        permutation is handled internally like :meth:`FBMPKOperator.power`.
        """
        if iterations < 1:
            raise ValueError("iterations must be positive")
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (self.n,):
            raise ValueError("right-hand side dimension mismatch")
        perm = self.op.perm
        if perm is not None:
            b = b[perm]
            if x is not None:
                x = np.asarray(x, dtype=np.float64)[perm]
        x = np.zeros(self.n) if x is None else \
            np.asarray(x, dtype=np.float64).copy()
        d = self.op.part.diag
        for _ in range(iterations):
            for rows, lg, ug in self._fw:
                x[rows] = (b[rows] - lg.matvec(x) - ug.matvec(x)) / d[rows]
            for rows, lg, ug in self._bw:
                x[rows] = (b[rows] - lg.matvec(x) - ug.matvec(x)) / d[rows]
        if perm is not None:
            out = np.empty_like(x)
            out[perm] = x
            return out
        return x

    def as_preconditioner(self):
        """Adapter for CG's ``preconditioner`` argument: one SYMGS sweep
        applied to the residual (a symmetric preconditioner for SPD A)."""
        def apply(r: np.ndarray) -> np.ndarray:
            return self.smooth(r)

        return apply
