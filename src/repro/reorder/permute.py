"""Permutation algebra for symmetric matrix reordering.

Convention: a permutation is an int64 array ``perm`` with
``perm[new_index] = old_index``.  Applying it to a matrix produces
``B = P A P^T`` with ``B[i, j] = A[perm[i], perm[j]]`` — rows *and*
columns are reordered together, which preserves the spectrum and hence
every MPK result up to the same reordering of vector entries.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CSRMatrix

__all__ = [
    "is_permutation",
    "invert_permutation",
    "compose_permutations",
    "permute_symmetric",
    "permute_vector",
    "unpermute_vector",
]


def is_permutation(perm: np.ndarray) -> bool:
    """True when ``perm`` is a bijection of ``0..len(perm)-1``."""
    perm = np.asarray(perm)
    if perm.ndim != 1:
        return False
    n = perm.shape[0]
    seen = np.zeros(n, dtype=bool)
    valid = (perm >= 0) & (perm < n)
    if not valid.all():
        return False
    seen[perm] = True
    return bool(seen.all())


def invert_permutation(perm: np.ndarray) -> np.ndarray:
    """The inverse map: ``inv[old_index] = new_index``."""
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.shape[0], dtype=np.int64)
    return inv


def compose_permutations(outer: np.ndarray, inner: np.ndarray) -> np.ndarray:
    """Composition ``c`` with ``c[i] = inner[outer[i]]``.

    Applying ``inner`` first and then ``outer`` to a matrix equals applying
    ``c`` once.
    """
    outer = np.asarray(outer, dtype=np.int64)
    inner = np.asarray(inner, dtype=np.int64)
    return inner[outer]


def permute_symmetric(a: CSRMatrix, perm: np.ndarray) -> CSRMatrix:
    """Symmetrically reorder a square CSR matrix: ``B = P A P^T``."""
    if a.shape[0] != a.shape[1]:
        raise ValueError("symmetric permutation requires a square matrix")
    perm = np.asarray(perm, dtype=np.int64)
    if perm.shape != (a.n_rows,):
        raise ValueError("permutation length must equal matrix dimension")
    inv = invert_permutation(perm)
    old_rows = np.repeat(np.arange(a.n_rows, dtype=np.int64), a.row_nnz())
    new_rows = inv[old_rows]
    new_cols = inv[a.indices]
    return CSRMatrix.from_coo_arrays(
        new_rows, new_cols, a.data, a.shape, sum_duplicates=False
    )


def permute_vector(x: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Reorder a vector into the permuted numbering: ``y[i] = x[perm[i]]``."""
    return np.asarray(x)[np.asarray(perm, dtype=np.int64)]


def unpermute_vector(y: np.ndarray, perm: np.ndarray,
                     out: np.ndarray = None) -> np.ndarray:
    """Undo :func:`permute_vector`: returns ``x`` with ``x[perm[i]] = y[i]``.

    ``out``, if given, receives the result in place of a fresh
    allocation (it must have ``y``'s shape and dtype) and is returned.
    """
    y = np.asarray(y)
    x = np.empty_like(y) if out is None else out
    x[np.asarray(perm, dtype=np.int64)] = y
    return x
