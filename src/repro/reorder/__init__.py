"""Matrix reordering toolkit: ABMC, RCM, colouring, levels, permutations.

Implements the preprocessing side of the paper — Section III-D's ABMC
multi-colour ordering (with its quotient-graph colouring, standing in for
Colpack) plus the related orderings the paper cites: RCM for locality and
level scheduling as the alternative parallelisation of Section VII.
"""

from .abmc import ABMCOrdering, abmc_ordering
from .coloring import check_coloring, color_counts, greedy_coloring, luby_coloring
from .graph import AdjacencyGraph, adjacency_from_matrix, quotient_graph
from .levels import (
    check_levels,
    compute_levels,
    levels_sequential,
    levels_to_groups,
    levels_vectorised,
)
from .levels_blocked import (
    BlockedSchedule,
    LevelBlocking,
    blocked_descriptors,
    build_blocked_schedule,
    build_level_blocking,
    check_blocked_schedule,
)
from .permute import (
    compose_permutations,
    invert_permutation,
    is_permutation,
    permute_symmetric,
    permute_vector,
    unpermute_vector,
)
from .rcm import matrix_bandwidth, pseudo_peripheral_vertex, rcm_ordering

__all__ = [
    "ABMCOrdering",
    "abmc_ordering",
    "check_coloring",
    "color_counts",
    "greedy_coloring",
    "luby_coloring",
    "AdjacencyGraph",
    "adjacency_from_matrix",
    "quotient_graph",
    "check_levels",
    "compute_levels",
    "BlockedSchedule",
    "LevelBlocking",
    "blocked_descriptors",
    "build_blocked_schedule",
    "build_level_blocking",
    "check_blocked_schedule",
    "levels_sequential",
    "levels_to_groups",
    "levels_vectorised",
    "compose_permutations",
    "invert_permutation",
    "is_permutation",
    "permute_symmetric",
    "permute_vector",
    "unpermute_vector",
    "matrix_bandwidth",
    "pseudo_peripheral_vertex",
    "rcm_ordering",
]
