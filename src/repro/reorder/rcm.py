"""Reverse Cuthill-McKee (RCM) bandwidth-reducing ordering.

RCM is the classic locality-improving reordering the paper cites in
Section II-C.  It is used here (a) as a preprocessing option before ABMC
blocking — consecutive blocking works best when neighbouring rows are
graph-adjacent — and (b) as a baseline reordering in the experiments.

Implementation: BFS from a pseudo-peripheral vertex, visiting neighbours
in ascending-degree order, then reversing the visit order.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..sparse.csr import CSRMatrix
from .graph import AdjacencyGraph, adjacency_from_matrix

__all__ = ["rcm_ordering", "pseudo_peripheral_vertex", "matrix_bandwidth"]


def pseudo_peripheral_vertex(graph: AdjacencyGraph, start: int = 0) -> int:
    """Find a vertex of (near-)maximal eccentricity by repeated BFS.

    The George-Liu heuristic: BFS from ``start``, move to a minimum-degree
    vertex of the last level, repeat until the eccentricity stops growing.
    """
    if graph.n == 0:
        raise ValueError("empty graph")
    v = int(start)
    last_ecc = -1
    while True:
        levels = _bfs_levels(graph, v)
        ecc = int(levels.max(initial=0))
        if ecc <= last_ecc:
            return v
        last_ecc = ecc
        last_level = np.nonzero(levels == ecc)[0]
        degrees = graph.degree()[last_level]
        v = int(last_level[np.argmin(degrees)])


def _bfs_levels(graph: AdjacencyGraph, root: int) -> np.ndarray:
    """BFS distance from ``root``; unreachable vertices get level 0 so the
    peripheral search stays within the root's component."""
    levels = np.full(graph.n, -1, dtype=np.int64)
    levels[root] = 0
    queue = deque([root])
    while queue:
        v = queue.popleft()
        for w in graph.neighbours(v):
            if levels[w] < 0:
                levels[w] = levels[v] + 1
                queue.append(int(w))
    levels[levels < 0] = 0
    return levels


def rcm_ordering(a: CSRMatrix) -> np.ndarray:
    """RCM permutation of a square matrix (``perm[new] = old``).

    Disconnected components are processed in ascending order of their
    smallest vertex id, each from its own pseudo-peripheral start.
    """
    if a.shape[0] != a.shape[1]:
        raise ValueError("RCM requires a square matrix")
    graph = adjacency_from_matrix(a)
    n = graph.n
    degree = graph.degree()
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    for seed in range(n):
        if visited[seed]:
            continue
        root = pseudo_peripheral_vertex(graph, seed)
        if visited[root]:  # peripheral search may land in a visited part
            root = seed
        visited[root] = True
        queue = deque([root])
        while queue:
            v = queue.popleft()
            order[pos] = v
            pos += 1
            neigh = graph.neighbours(v)
            unvisited = neigh[~visited[neigh]]
            # Ascending degree, ties by vertex id, per Cuthill-McKee.
            for w in unvisited[np.lexsort((unvisited, degree[unvisited]))]:
                if not visited[w]:
                    visited[w] = True
                    queue.append(int(w))
    assert pos == n
    return order[::-1].copy()


def matrix_bandwidth(a: CSRMatrix) -> int:
    """Maximum ``|i - j|`` over stored entries — what RCM minimises."""
    if a.nnz == 0:
        return 0
    rows = np.repeat(np.arange(a.n_rows, dtype=np.int64), a.row_nnz())
    return int(np.abs(rows - a.indices).max())
