"""Level scheduling for triangular dependency structures.

The alternative parallelisation named in the paper's Section VII (as used
for symmetric Gauss-Seidel): group rows into *levels* so that every
dependency of a row lies in a strictly earlier level.  Rows within one
level are mutually independent and can run in parallel (or vectorised).

For the FBMPK forward sweep the dependencies are the strict lower
triangle ``L`` (row i needs rows j < i with ``L[i, j] != 0``); for the
backward sweep they are the strict upper triangle ``U`` (row i needs rows
j > i).  Both reduce to the same computation on a triangular CSR matrix.

Two implementations with identical results:

``levels_sequential``
    One pass over rows in dependency order (pure Python) — reference.
``levels_vectorised``
    Fixed-point iteration with numpy segment maxima; each round lifts
    every row to ``1 + max(level of dependencies)``.  Rounds needed =
    final level count, so this is fast exactly when level scheduling is
    useful (few levels) and the sequential variant covers the rest.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..sparse.csr import CSRMatrix

__all__ = [
    "levels_sequential",
    "levels_vectorised",
    "compute_levels",
    "levels_to_groups",
    "check_levels",
]


def levels_sequential(tri: CSRMatrix, direction: str = "forward") -> np.ndarray:
    """Level of every row by a single sweep in dependency order.

    ``direction="forward"`` treats ``tri`` as a strict lower triangle
    (dependencies point to smaller row ids, sweep top-down);
    ``"backward"`` treats it as a strict upper triangle (dependencies
    point to larger ids, sweep bottom-up).
    """
    if direction not in ("forward", "backward"):
        raise ValueError(f"unknown direction {direction!r}")
    n = tri.n_rows
    levels = np.zeros(n, dtype=np.int64)
    if n == 0:
        # Agree with levels_vectorised: empty matrix -> empty level array.
        return levels
    rows = range(n) if direction == "forward" else range(n - 1, -1, -1)
    for i in rows:
        deps = tri.indices[tri.indptr[i] : tri.indptr[i + 1]]
        if deps.size:
            levels[i] = int(levels[deps].max()) + 1
    return levels


def levels_vectorised(
    tri: CSRMatrix, direction: str = "forward", max_rounds: int | None = None
) -> np.ndarray:
    """Fixed-point level computation with numpy segment maxima.

    Each round recomputes ``level[i] = 1 + max(level[deps])`` for all rows
    at once; convergence is reached after as many rounds as there are
    levels.  ``max_rounds`` guards against accidental use on chains (a
    tridiagonal matrix has ``n`` levels); by default it is ``n + 1``.
    """
    if direction not in ("forward", "backward"):
        raise ValueError(f"unknown direction {direction!r}")
    n = tri.n_rows
    levels = np.zeros(n, dtype=np.int64)
    if tri.nnz == 0 or n == 0:
        return levels
    limit = (n + 1) if max_rounds is None else max_rounds
    has_deps = tri.row_nnz() > 0
    nonempty = np.nonzero(has_deps)[0]
    starts = tri.indptr[:-1][has_deps]
    for _ in range(limit):
        dep_levels = levels[tri.indices]
        new = levels.copy()
        new[nonempty] = np.maximum.reduceat(dep_levels, starts) + 1
        if np.array_equal(new, levels):
            return levels
        levels = new
    raise RuntimeError("level computation did not converge within max_rounds")


def compute_levels(tri: CSRMatrix, direction: str = "forward") -> np.ndarray:
    """Level computation with automatic implementation choice.

    Small matrices use the sequential sweep; larger ones try the
    vectorised fixed point and fall back to sequential when the level
    count explodes past the round budget.
    """
    if tri.n_rows <= 2048:
        return levels_sequential(tri, direction)
    budget = max(64, int(np.sqrt(tri.n_rows)))
    try:
        return levels_vectorised(tri, direction, max_rounds=budget)
    except RuntimeError:
        return levels_sequential(tri, direction)


def levels_to_groups(levels: np.ndarray) -> List[np.ndarray]:
    """Row-index arrays per level, ordered by ascending level."""
    levels = np.asarray(levels, dtype=np.int64)
    if levels.size == 0:
        return []
    order = np.argsort(levels, kind="stable")
    sorted_levels = levels[order]
    boundaries = np.nonzero(np.diff(sorted_levels))[0] + 1
    return [g.copy() for g in np.split(order, boundaries)]


def check_levels(tri: CSRMatrix, levels: np.ndarray) -> bool:
    """Validate the level property: every stored dependency of row ``i``
    has a strictly smaller level."""
    levels = np.asarray(levels)
    if levels.shape != (tri.n_rows,):
        return False
    rows = np.repeat(np.arange(tri.n_rows, dtype=np.int64), tri.row_nnz())
    return bool((levels[tri.indices] < levels[rows]).all())
