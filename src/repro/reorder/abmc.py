"""Algebraic Block Multi-Colour ordering (ABMC, Iwashita et al. 2012).

This is the parallelisation enabler of the paper's Section III-D:

1. rows are grouped into *blocks* (``block_size`` rows each);
2. the block *quotient graph* is coloured so same-colour blocks share no
   matrix entries;
3. rows are renumbered block-by-block in colour order.

After the reordering, the rows of one colour form a contiguous range, all
blocks inside a colour can be processed in parallel, and every dependency
through the strict lower (upper) triangle points to an earlier (later)
colour or to an earlier (later) row of the *same block* — the invariant
both the fused vectorised FBMPK sweeps and the simulated multi-threaded
executor rely on.

Two blocking strategies are provided:

``"consecutive"``
    Blocks are runs of consecutive row ids.  This is the "algebraic"
    strategy of the original paper — cheap, and effective whenever the
    input ordering already has locality (FEM meshes, RCM output).
``"bfs"``
    Blocks aggregate graph-adjacent rows via breadth-first traversal,
    improving intra-block connectivity for scrambled orderings.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Literal

import numpy as np

from ..sparse.csr import CSRMatrix
from .coloring import check_coloring, greedy_coloring
from .graph import AdjacencyGraph, adjacency_from_matrix, quotient_graph

__all__ = ["ABMCOrdering", "abmc_ordering"]

BlockStrategy = Literal["consecutive", "bfs"]


@dataclass(frozen=True)
class ABMCOrdering:
    """Result of the ABMC preprocessing step.

    Attributes
    ----------
    perm:
        Row permutation, ``perm[new_row] = old_row``.
    block_of:
        For every *new* row index, the id of its block.
    color_of_block:
        Colour id per block.
    n_colors:
        Number of colours used.
    color_ranges:
        ``(start, stop)`` new-row ranges, one per colour, covering the
        matrix contiguously in colour order.
    block_ranges:
        ``(start, stop)`` new-row ranges of every block, ordered by colour
        then block id; blocks within one colour are mutually independent.
    block_size:
        The requested rows-per-block.
    """

    perm: np.ndarray
    block_of: np.ndarray
    color_of_block: np.ndarray
    n_colors: int
    color_ranges: List[tuple]
    block_ranges: List[tuple]
    block_size: int

    @property
    def n(self) -> int:
        """Number of rows."""
        return int(self.perm.shape[0])

    @property
    def n_blocks(self) -> int:
        """Number of blocks."""
        return int(self.color_of_block.shape[0])

    def blocks_of_color(self, color: int) -> List[tuple]:
        """New-row ranges of the blocks carrying ``color``.

        ``block_ranges`` is ordered by new-row position, and rows are
        sorted by colour first, so the ranges of one colour are a
        contiguous run of this list.
        """
        return [
            (start, stop)
            for start, stop in self.block_ranges
            if self.color_of_block[self.block_of[start]] == color
        ]

    def max_parallel_blocks(self) -> int:
        """Largest number of blocks sharing one colour — the available
        parallelism of the widest phase (cf. the ``cant`` discussion in
        Section V-A)."""
        return int(np.bincount(self.color_of_block).max(initial=0))


def _blocks_consecutive(n: int, block_size: int) -> np.ndarray:
    """Assign row ``i`` to block ``i // block_size`` (old numbering)."""
    return np.arange(n, dtype=np.int64) // block_size


def _blocks_bfs(graph: AdjacencyGraph, block_size: int) -> np.ndarray:
    """Aggregate graph-adjacent vertices into blocks by BFS traversal."""
    n = graph.n
    block_of = np.full(n, -1, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    for seed in range(n):
        if visited[seed]:
            continue
        queue = deque([seed])
        visited[seed] = True
        while queue:
            v = queue.popleft()
            order[pos] = v
            pos += 1
            for w in graph.neighbours(v):
                if not visited[w]:
                    visited[w] = True
                    queue.append(int(w))
    block_of[order] = np.arange(n, dtype=np.int64) // block_size
    return block_of


def abmc_ordering(
    a: CSRMatrix,
    block_size: int = 512,
    strategy: BlockStrategy = "consecutive",
    color_order: str = "natural",
) -> ABMCOrdering:
    """Run ABMC on a square matrix and return the full ordering artefact.

    ``block_size`` mirrors the paper's tunable (defaults 512/1024 in their
    implementation); ``block_size=1`` degenerates to classic point
    multi-colouring.
    """
    if a.shape[0] != a.shape[1]:
        raise ValueError("ABMC requires a square matrix")
    if block_size < 1:
        raise ValueError("block_size must be positive")
    n = a.n_rows
    graph = adjacency_from_matrix(a)
    if strategy == "consecutive":
        block_of_old = _blocks_consecutive(n, block_size)
    elif strategy == "bfs":
        block_of_old = _blocks_bfs(graph, block_size)
    else:
        raise ValueError(f"unknown blocking strategy {strategy!r}")
    n_blocks = int(block_of_old.max(initial=-1)) + 1
    quotient = quotient_graph(graph, block_of_old, n_blocks)
    # Sequential greedy is both faster and more colour-frugal than the
    # vectorised Luby alternative at every size we handle, so it is the
    # default; ``luby_coloring`` stays available for callers who want it.
    color_of_block = greedy_coloring(quotient, order=color_order)
    assert check_coloring(quotient, color_of_block)
    n_colors = int(color_of_block.max(initial=-1)) + 1
    # New row order: sort rows by (colour of their block, block id, row id).
    # Stable lexsort keeps blocks contiguous and rows in original relative
    # order inside each block.
    row_block = block_of_old
    row_color = color_of_block[row_block]
    perm = np.lexsort((np.arange(n), row_block, row_color)).astype(np.int64)
    block_of_new = row_block[perm]
    # Contiguous ranges per colour and per block in the new numbering.
    new_colors = row_color[perm]
    color_ranges: List[tuple] = []
    for c in range(n_colors):
        idx = np.nonzero(new_colors == c)[0]
        color_ranges.append((int(idx[0]), int(idx[-1]) + 1))
    block_ranges: List[tuple] = []
    if n:
        boundaries = np.nonzero(np.diff(block_of_new))[0] + 1
        starts = np.concatenate([[0], boundaries])
        stops = np.concatenate([boundaries, [n]])
        block_ranges = [(int(s), int(e)) for s, e in zip(starts, stops)]
    return ABMCOrdering(
        perm=perm,
        block_of=block_of_new,
        color_of_block=color_of_block,
        n_colors=n_colors,
        color_ranges=color_ranges,
        block_ranges=block_ranges,
        block_size=block_size,
    )
