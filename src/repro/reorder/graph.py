"""Graph views of sparse-matrix structure.

Reordering algorithms (ABMC, RCM, colouring) operate on the *adjacency
graph* of the matrix: vertices are rows, and an undirected edge connects
``i`` and ``j`` whenever ``A[i, j]`` or ``A[j, i]`` is stored (the
symmetrised pattern), self-loops removed.  For blocked methods the
*quotient graph* contracts each block to a single vertex.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.csr import CSRMatrix

__all__ = ["AdjacencyGraph", "adjacency_from_matrix", "quotient_graph"]


@dataclass(frozen=True)
class AdjacencyGraph:
    """Undirected graph in CSR adjacency form.

    ``indptr``/``indices`` describe sorted, deduplicated neighbour lists
    without self-loops; every edge appears in both endpoint lists.
    """

    indptr: np.ndarray
    indices: np.ndarray
    n: int

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return int(self.indices.shape[0]) // 2

    def degree(self) -> np.ndarray:
        """Vertex degrees."""
        return np.diff(self.indptr)

    def neighbours(self, v: int) -> np.ndarray:
        """Sorted neighbour list of vertex ``v`` (a view)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def max_degree(self) -> int:
        """Maximum vertex degree (0 for an empty graph)."""
        d = self.degree()
        return int(d.max(initial=0))


def _build_adjacency(rows: np.ndarray, cols: np.ndarray, n: int) -> AdjacencyGraph:
    """Assemble a deduplicated undirected adjacency from directed pairs."""
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    all_rows = np.concatenate([rows, cols])
    all_cols = np.concatenate([cols, rows])
    if all_rows.size:
        # Single-key sort + diff dedup (faster than lexsort on two keys
        # and than np.unique's hash path).
        key = all_rows * np.int64(n) + all_cols
        key.sort()
        keep = np.empty(key.shape, dtype=bool)
        keep[0] = True
        np.not_equal(key[1:], key[:-1], out=keep[1:])
        key = key[keep]
        all_rows, all_cols = key // n, key % n
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, all_rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return AdjacencyGraph(indptr=indptr, indices=all_cols, n=n)


def adjacency_from_matrix(a: CSRMatrix) -> AdjacencyGraph:
    """Symmetrised, self-loop-free adjacency graph of a square matrix."""
    if a.shape[0] != a.shape[1]:
        raise ValueError("adjacency requires a square matrix")
    rows = np.repeat(np.arange(a.n_rows, dtype=np.int64), a.row_nnz())
    return _build_adjacency(rows, a.indices, a.n_rows)


def quotient_graph(graph: AdjacencyGraph, block_of: np.ndarray,
                   n_blocks: int) -> AdjacencyGraph:
    """Contract each block of vertices to one quotient vertex.

    ``block_of[v]`` names the block of vertex ``v``; quotient vertices are
    adjacent when any cross-block edge connects their members.  This is the
    graph ABMC colours: same-colour blocks then provably share no matrix
    entries, which is the parallel-safety property of Section III-D.
    """
    block_of = np.asarray(block_of, dtype=np.int64)
    if block_of.shape != (graph.n,):
        raise ValueError("block_of length must equal vertex count")
    if block_of.size and (block_of.min() < 0 or block_of.max() >= n_blocks):
        raise ValueError("block id out of range")
    src = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degree())
    b_src = block_of[src]
    b_dst = block_of[graph.indices]
    return _build_adjacency(b_src, b_dst, n_blocks)
