"""Level-based cache blocking (RACE-style) for matrix power kernels.

FBMPK gets its DRAM win from *fusing* stages so A streams (k+1)/2 times
instead of k; *Level-based Blocking for Sparse Matrices* (arXiv
2205.01598) shows the complementary route: keep a cache-sized block of A
resident and apply **all k powers** to it before advancing, so the block
streams from DRAM once and is reused k times from cache.  This module
builds that schedule on top of the dependency levels of
:mod:`repro.reorder.levels`:

1. :func:`build_level_blocking` merges *consecutive* level sets into
   blocks of at least ``block_rows`` rows and materialises each block's
   dependency closure — the symmetric set of blocks its rows reference
   through the columns of ``L`` and ``U`` (plus itself).
2. :func:`build_blocked_schedule` list-schedules the ``(block, power)``
   grid into barrier phases: block ``b`` starts at phase ``b`` (the skew
   that creates the diagonal wavefront) and may compute power ``p`` only
   one phase after every neighbour finished power ``p - 1``.
3. :func:`blocked_descriptors` expands each scheduled ``(block, power)``
   into contiguous-row descriptors tagged with the *update kind* (op)
   that reproduces serial FBMPK's per-row arithmetic bit-for-bit.

Correctness argument (the invariant :func:`check_blocked_schedule`
verifies): the iterate buffer is the BtB pair, power ``p`` writes slot
``p & 1`` reading slot ``(p - 1) & 1``, so a row's two most recent
powers are always live.  Because the neighbour relation is symmetric,
the ASAP schedule satisfies ``t(b, p) >= 1 + t(nb, p - 1)`` for every
neighbour ``nb``, which simultaneously guarantees (a) all inputs of
``(b, p)`` are ready and (b) no neighbour has advanced past ``p + 1``
and overwritten the slot ``(b, p)`` still reads.  Within one phase a
neighbouring pair can only appear at the *same* power (any offset would
violate the inequality in one direction), and same-power blocks write
disjoint rows of one slot while reading the other — race-free without
any intra-phase ordering.

Bit-identity with serial FBMPK (``strategy="levels"``): per-row sums
are CSR-segment reductions whose result is invariant under row-range
slicing, and each op reproduces the exact association order of the
serial pipeline's stage that produces that power — ``(u + dx) + l`` for
odd intermediates (forward stage), ``(l + dx) + u`` for even powers
(backward stage), ``(l + u) + dx`` for a final odd power (tail).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..sparse.csr import CSRMatrix
from .levels import compute_levels, levels_to_groups

__all__ = [
    "OP_ODD",
    "OP_EVEN",
    "OP_FINAL_ODD",
    "LevelBlocking",
    "BlockedSchedule",
    "build_level_blocking",
    "build_blocked_schedule",
    "blocked_descriptors",
    "check_blocked_schedule",
]

#: Update kinds carried per descriptor (the ``ops`` row of the packed
#: plan table).  Each fixes both the BtB slots (odd powers read slot 0,
#: write slot 1; even powers the reverse) and the serial association
#: order of the three per-row partial sums.
OP_ODD = 0        #: odd intermediate power:  y = (u + d*x) + l
OP_EVEN = 1       #: even power:              y = (l + d*x) + u
OP_FINAL_ODD = 2  #: final odd power (p = k): y = (l + u) + d*x


@dataclass(frozen=True)
class LevelBlocking:
    """Rows partitioned into level-closed blocks with materialised
    dependency closures.

    ``blocks[b]`` is the sorted row-index array of block ``b`` (blocks
    are unions of consecutive dependency levels, so all ``L``
    dependencies point to the same or earlier blocks and all ``U``
    dependencies to the same or later ones); ``block_of[i]`` inverts the
    partition; ``neighbours[b]`` is the sorted array of blocks reachable
    from ``b`` through any stored entry of ``L`` or ``U`` in either
    direction, *including* ``b`` itself; ``nnz[b]`` is the combined
    ``L + U`` entry count of the block's rows (the load-balance weight).
    """

    blocks: Tuple[np.ndarray, ...]
    block_of: np.ndarray
    neighbours: Tuple[np.ndarray, ...]
    nnz: np.ndarray

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def n(self) -> int:
        return int(self.block_of.shape[0])


@dataclass(frozen=True)
class BlockedSchedule:
    """Barrier phases of ``(block, power)`` items for one ``k``."""

    k: int
    #: ``phases[t]`` holds the ``(block, power)`` pairs executed between
    #: barriers ``t`` and ``t + 1``.
    phases: Tuple[Tuple[Tuple[int, int], ...], ...]

    @property
    def n_phases(self) -> int:
        return len(self.phases)


def build_level_blocking(
    lower: CSRMatrix, upper: CSRMatrix, block_rows: int = 256
) -> LevelBlocking:
    """Partition rows into cache-sized blocks of consecutive levels.

    Levels come from the forward dependency structure (``lower``);
    consecutive levels are merged greedily until a block holds at least
    ``block_rows`` rows, so ``block_rows`` is the cache-residency knob:
    small blocks maximise reuse but multiply barriers, large blocks the
    reverse.  ``block_rows=1`` degenerates to one block per level.
    """
    if block_rows < 1:
        raise ValueError("block_rows must be positive")
    n = lower.n_rows
    if upper.n_rows != n:
        raise ValueError("lower/upper dimensions disagree")
    groups = levels_to_groups(compute_levels(lower, "forward"))
    blocks: List[np.ndarray] = []
    acc: List[np.ndarray] = []
    acc_rows = 0
    for g in groups:
        acc.append(g)
        acc_rows += g.size
        if acc_rows >= block_rows:
            blocks.append(np.sort(np.concatenate(acc)))
            acc, acc_rows = [], 0
    if acc:
        blocks.append(np.sort(np.concatenate(acc)))
    block_of = np.empty(n, dtype=np.int64)
    row_weight = lower.row_nnz() + upper.row_nnz()
    nnz = np.empty(len(blocks), dtype=np.int64)
    for b, rows in enumerate(blocks):
        block_of[rows] = b
        nnz[b] = int(row_weight[rows].sum())
    nb = len(blocks)
    # Symmetric block adjacency (with self loops) from the column
    # references of both triangles.
    srcs = [np.arange(nb, dtype=np.int64)]
    dsts = [np.arange(nb, dtype=np.int64)]
    for tri in (lower, upper):
        if tri.nnz:
            r = np.repeat(np.arange(n, dtype=np.int64), tri.row_nnz())
            s, d = block_of[r], block_of[tri.indices]
            srcs.extend((s, d))
            dsts.extend((d, s))
    pairs = np.unique(
        np.stack([np.concatenate(srcs), np.concatenate(dsts)], axis=1),
        axis=0)
    boundaries = np.nonzero(np.diff(pairs[:, 0]))[0] + 1
    neighbours = tuple(part[:, 1].copy()
                       for part in np.split(pairs, boundaries)) if nb \
        else ()
    return LevelBlocking(blocks=tuple(blocks), block_of=block_of,
                         neighbours=neighbours, nnz=nnz)


def build_blocked_schedule(blocking: LevelBlocking,
                           k: int) -> BlockedSchedule:
    """ASAP list schedule of the ``(block, power)`` grid.

    Block ``b`` computes power 1 at phase ``b`` — the skew that turns
    the grid into a diagonal wavefront, so at any phase only ``O(k)``
    consecutive blocks are active and each block's k visits happen in a
    bounded phase window (the cache-residency window the traffic model
    prices).  Later powers start as soon as the symmetric neighbour
    constraint ``t(b, p) >= 1 + max(t(nb, p - 1))`` allows.
    """
    if k < 1:
        raise ValueError("power k must be >= 1")
    nb = blocking.n_blocks
    sched: dict = {}
    t_prev = np.arange(nb, dtype=np.int64)  # t(b, 1) = b (the skew)
    for b in range(nb):
        sched.setdefault(int(t_prev[b]), []).append((b, 1))
    for p in range(2, k + 1):
        t_cur = np.empty(nb, dtype=np.int64)
        for b in range(nb):
            t_cur[b] = 1 + int(t_prev[blocking.neighbours[b]].max())
        for b in range(nb):
            sched.setdefault(int(t_cur[b]), []).append((b, p))
        t_prev = t_cur
    phases = tuple(tuple(sched[t]) for t in sorted(sched))
    return BlockedSchedule(k=k, phases=phases)


def _op_for_power(p: int, k: int) -> int:
    if p % 2 == 0:
        return OP_EVEN
    return OP_FINAL_ODD if p == k else OP_ODD


def blocked_descriptors(
    blocking: LevelBlocking,
    schedule: BlockedSchedule,
    lower: CSRMatrix,
    upper: CSRMatrix,
) -> List[List[Tuple[int, int, int, int]]]:
    """Expand the schedule into per-phase ``(start, stop, nnz, op)``
    descriptors: each ``(block, power)`` item becomes one descriptor per
    maximal run of consecutive rows (contiguous level unions collapse to
    one fat descriptor, scattered ones degrade gracefully)."""
    row_weight = lower.row_nnz() + upper.row_nnz()
    phases: List[List[Tuple[int, int, int, int]]] = []
    for items in schedule.phases:
        descs: List[Tuple[int, int, int, int]] = []
        for b, p in items:
            rows = blocking.blocks[b]
            if not rows.size:
                continue
            op = _op_for_power(p, schedule.k)
            breaks = np.nonzero(np.diff(rows) != 1)[0] + 1
            for run in np.split(rows, breaks):
                start, stop = int(run[0]), int(run[-1]) + 1
                descs.append(
                    (start, stop, int(row_weight[start:stop].sum()), op))
        phases.append(descs)
    return phases


def check_blocked_schedule(blocking: LevelBlocking,
                           schedule: BlockedSchedule) -> bool:
    """Validate the ping-pong safety invariant by simulation.

    Walks the phases keeping each block's completed power count and
    asserts, against the state at the *start* of the phase (barrier
    semantics): every item advances its block by exactly one power, no
    block appears twice in a phase, and every neighbour sits within
    ``[p - 1, p]`` — behind by more means an input is missing, ahead by
    more means the read slot was already overwritten.  Finally every
    block must reach power ``k``.
    """
    done = np.zeros(blocking.n_blocks, dtype=np.int64)
    for items in schedule.phases:
        seen = set()
        for b, p in items:
            if b in seen:
                return False
            seen.add(b)
            if p != int(done[b]) + 1:
                return False
            nb_done = done[blocking.neighbours[b]]
            if nb_done.size and (int(nb_done.min()) < p - 1
                                 or int(nb_done.max()) > p):
                return False
        for b, p in items:
            done[b] = p
    return bool((done == schedule.k).all())
