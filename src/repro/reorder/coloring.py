"""Graph colouring — the Colpack role in the paper's toolchain.

The paper assigns colours to ABMC blocks with the Colpack library; we
provide the same algorithm class:

``greedy_coloring``
    Sequential greedy distance-1 colouring in a given vertex order
    (natural or largest-degree-first).  Deterministic; the reference.
``luby_coloring``
    Vectorised colouring that repeatedly extracts a maximal independent
    set with Luby's random-priority rule (numpy segment reductions, no
    per-vertex Python loop).  Used when colouring the full point graph of
    large matrices (block size 1), where the sequential loop would be too
    slow in Python.

Both return an int64 colour per vertex with colours numbered ``0..c-1``;
:func:`check_coloring` validates the distance-1 property.
"""

from __future__ import annotations

import numpy as np

from .graph import AdjacencyGraph

__all__ = [
    "greedy_coloring",
    "luby_coloring",
    "check_coloring",
    "color_counts",
]


def greedy_coloring(graph: AdjacencyGraph, order: str = "natural") -> np.ndarray:
    """First-fit greedy colouring.

    ``order`` is ``"natural"`` (vertex id) or ``"largest_first"`` (by
    descending degree, the classic Welsh-Powell heuristic).  Uses at most
    ``max_degree + 1`` colours.
    """
    n = graph.n
    if order == "natural":
        sequence = range(n)
    elif order == "largest_first":
        sequence = np.argsort(-graph.degree(), kind="stable")
    else:
        raise ValueError(f"unknown order {order!r}")
    colors = np.full(n, -1, dtype=np.int64)
    # Scratch marker of forbidden colours, reused across vertices: a colour
    # is forbidden for v when forbidden[colour] == v.
    forbidden = np.full(graph.max_degree() + 2, -1, dtype=np.int64)
    for v in sequence:
        v = int(v)
        for c in colors[graph.neighbours(v)]:
            if c >= 0:
                forbidden[c] = v
        color = 0
        while forbidden[color] == v:
            color += 1
        colors[v] = color
    return colors


def _segment_max(values: np.ndarray, indptr: np.ndarray, fill: float) -> np.ndarray:
    """Per-segment maximum via ``np.maximum.reduceat`` with empty-segment
    fix-up (same technique as :func:`repro.sparse.csr.reduce_rows`)."""
    n = indptr.shape[0] - 1
    out = np.full(n, fill, dtype=values.dtype)
    if values.shape[0] == 0 or n == 0:
        return out
    nonempty = indptr[:-1] != indptr[1:]
    if not nonempty.any():
        return out
    starts = indptr[:-1][nonempty]
    out[nonempty] = np.maximum.reduceat(values, starts)
    return out


def luby_coloring(
    graph: AdjacencyGraph, seed: int = 0, max_rounds: int = 10_000
) -> np.ndarray:
    """Colouring by repeated Luby maximal-independent-set extraction.

    Colour ``c`` is a maximal independent set of the subgraph induced by
    the still-uncoloured vertices.  Priorities are a random permutation of
    ``0..n-1`` (unique, so there are no ties): a vertex joins the set when
    its priority beats every live neighbour's.  All steps are numpy
    segment reductions, so each round costs ``O(nnz)`` with no Python
    per-vertex loop.
    """
    n = graph.n
    rng = np.random.default_rng(seed)
    colors = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return colors
    dst = graph.indices
    indptr = graph.indptr
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    color = 0
    rounds = 0
    while (colors < 0).any():
        candidate = colors < 0
        in_set = np.zeros(n, dtype=bool)
        while candidate.any():
            rounds += 1
            if rounds > max_rounds:  # pragma: no cover - safety valve
                raise RuntimeError("luby_coloring failed to converge")
            priority = rng.permutation(n).astype(np.int64)
            # Neighbour priorities only count while the neighbour is still
            # a live candidate for this colour.
            live = np.where(candidate[dst], priority[dst], np.int64(-1))
            best = _segment_max(live, indptr, fill=-1)
            wins = candidate & (priority > best)
            in_set |= wins
            candidate &= ~wins
            # Neighbours of fresh winners can no longer take this colour.
            touched = np.zeros(n, dtype=bool)
            touched[dst[wins[src]]] = True
            candidate &= ~touched
        colors[in_set] = color
        color += 1
    return colors


def check_coloring(graph: AdjacencyGraph, colors: np.ndarray) -> bool:
    """True when no edge joins two vertices of the same colour."""
    colors = np.asarray(colors)
    if colors.shape != (graph.n,) or (colors < 0).any():
        return False
    src = np.repeat(np.arange(graph.n, dtype=np.int64), graph.degree())
    return not bool((colors[src] == colors[graph.indices]).any())


def color_counts(colors: np.ndarray) -> np.ndarray:
    """Class sizes: ``counts[c]`` is the number of vertices coloured ``c``."""
    colors = np.asarray(colors, dtype=np.int64)
    if colors.size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.bincount(colors)
