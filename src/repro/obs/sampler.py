"""Sampling profiler: wall-clock stack sampling over all threads.

A background daemon thread wakes at a configurable rate (default
:data:`DEFAULT_HZ`), snapshots every Python thread's current frame via
``sys._current_frames()`` and folds each stack into a
*flamegraph-collapsed* tally::

    main;solve_power;_spmv_block 412
    main;solve_power;barrier_wait 87

i.e. ``;``-joined frames root-first, one line per distinct stack, the
count of samples after a space — the input format of Brendan Gregg's
``flamegraph.pl`` and of ``speedscope``'s collapsed importer.

When a telemetry session is active, each sampled stack is additionally
tagged with the innermost open span on that thread (via
:meth:`~repro.obs.tracing.TraceRecorder.active_span_name`), prefixing
the collapsed stack with ``span:<name>;`` — so the profile can be
filtered to "samples taken while ``executor.phase`` was open" without
any instrumentation in the sampled code.

Overhead notes: ``sys._current_frames()`` acquires the GIL once per
tick and returns a dict of frame objects; walking ``f_back`` chains is
pure C-level attribute access.  At the default 100 Hz this keeps the
overhead on a power sweep under the 5% budget enforced by
``benchmarks/bench_obs_overhead.py``.  The sampler thread excludes
itself from the tally.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Dict, List, Optional, TextIO

__all__ = [
    "DEFAULT_HZ",
    "MAX_STACK_DEPTH",
    "StackSampler",
    "write_collapsed",
]

#: Default sampling rate (samples per second, per thread).
DEFAULT_HZ = 100.0

#: Frames kept per stack; deeper stacks are truncated at the root end
#: (the leaf frames are the ones a flamegraph reader cares about).
MAX_STACK_DEPTH = 64


def _frame_label(frame) -> str:
    """``function (module:line-of-def)`` label for one frame."""
    code = frame.f_code
    filename = code.co_filename
    # Shorten site paths to the module tail — collapsed output must not
    # contain ";" or whitespace, and full paths bloat every line.
    short = filename.rsplit("/", 1)[-1].rsplit("\\", 1)[-1]
    return f"{code.co_name} ({short}:{code.co_firstlineno})"


class StackSampler:
    """Background wall-clock profiler producing collapsed stacks.

    Usage::

        sampler = StackSampler(hz=100.0, recorder=rec)
        sampler.start()
        ...                 # workload
        sampler.stop()
        write_collapsed(sampler.collapsed(), path)

    ``recorder`` is optional; when given, stacks gain a
    ``span:<name>;`` root frame naming the innermost open span on the
    sampled thread at sample time.  Start/stop are idempotent; the
    sampler may be restarted and keeps accumulating into the same
    tally unless :meth:`reset` is called.
    """

    def __init__(self, hz: float = DEFAULT_HZ, recorder=None,
                 max_depth: int = MAX_STACK_DEPTH) -> None:
        if hz <= 0:
            raise ValueError(f"sampling rate must be positive, got {hz}")
        self.hz = float(hz)
        self.max_depth = int(max_depth)
        self._recorder = recorder
        self._lock = threading.Lock()
        self._tally: Dict[str, int] = {}
        self._samples = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "StackSampler":
        """Launch the sampling thread (no-op when already running)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-sampler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Signal the sampling thread and wait for it to exit."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "StackSampler":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    # -- results --------------------------------------------------------
    @property
    def sample_count(self) -> int:
        """Sampling ticks taken so far (each tick samples all threads)."""
        with self._lock:
            return self._samples

    def collapsed(self) -> Dict[str, int]:
        """Snapshot of the tally: collapsed stack -> sample count."""
        with self._lock:
            return dict(self._tally)

    def reset(self) -> None:
        """Clear the tally (e.g. between benchmark repetitions)."""
        with self._lock:
            self._tally.clear()
            self._samples = 0

    # -- internals ------------------------------------------------------
    def _run(self) -> None:
        interval = 1.0 / self.hz
        own_ident = threading.get_ident()
        next_tick = time.perf_counter()
        while not self._stop.is_set():
            self._sample_once(own_ident)
            next_tick += interval
            delay = next_tick - time.perf_counter()
            if delay <= 0:
                # Fell behind (GIL contention): resynchronise rather
                # than burning a catch-up burst of back-to-back samples.
                next_tick = time.perf_counter()
                continue
            if self._stop.wait(delay):
                break

    def _sample_once(self, own_ident: int) -> None:
        frames = sys._current_frames()
        recorder = self._recorder
        local: List[str] = []
        for ident, frame in frames.items():
            if ident == own_ident:
                continue
            parts: List[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                parts.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            parts.reverse()  # root first, flamegraph order
            if recorder is not None:
                span = recorder.active_span_name(ident)
                if span:
                    parts.insert(0, f"span:{span}")
            local.append(";".join(parts))
        del frames  # drop frame references promptly
        with self._lock:
            self._samples += 1
            for stack in local:
                self._tally[stack] = self._tally.get(stack, 0) + 1


def write_collapsed(tally: Dict[str, int], path_or_file) -> int:
    """Write a collapsed-stack tally in flamegraph.pl format.

    Accepts a path or an open text file; lines are sorted by descending
    count then stack for deterministic output.  Returns the number of
    lines written.
    """
    lines = sorted(tally.items(), key=lambda kv: (-kv[1], kv[0]))
    if hasattr(path_or_file, "write"):
        fh: TextIO = path_or_file
        for stack, count in lines:
            fh.write(f"{stack} {count}\n")
    else:
        with open(path_or_file, "w") as fh:
            for stack, count in lines:
                fh.write(f"{stack} {count}\n")
    return len(lines)
