"""SLO and latency-quantile tracking for the serving stack.

Wraps a :class:`~repro.obs.metrics.MetricsRegistry` with the small
amount of policy the serve layer needs on top of raw instruments:

* a ``serve.latency`` histogram (seconds; Prometheus-friendly bucket
  ladder from 1 ms to 10 s) from which p50/p95/p99 are estimated with
  :meth:`Histogram.quantile` and mirrored into gauges on every record,
  so a ``/metrics`` scrape sees fresh quantiles without computing them
  server-side;
* an availability SLO: a request is *good* when it succeeded **and**
  finished within the latency target, *bad* otherwise; ``serve.slo.good``
  / ``serve.slo.bad`` counters accumulate forever (Prometheus-style —
  rate windows are the scraper's job);
* error-budget accounting against a goal (e.g. 0.99 = "99% of requests
  good"): with ``total`` requests the budget is ``total × (1 - goal)``
  bad requests; ``burn_rate`` is the fraction of that budget consumed
  (> 1.0 means the SLO is violated over the process lifetime), and
  ``budget_remaining`` is ``1 - burn_rate`` floored at 0.

Everything is updated under one tracker lock so the ``stats`` NDJSON op
and a concurrent ``/metrics`` scrape can never disagree by more than
in-flight requests.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple

from .metrics import MetricsRegistry

__all__ = [
    "LATENCY_BUCKETS",
    "QUANTILES",
    "SLOTracker",
]

#: Bucket ladder for request latency in seconds: 1 ms .. 10 s.  Chosen
#: to straddle the default 250 ms target with enough resolution for
#: p99 interpolation on either side of it.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Quantiles tracked as gauges (name fragment -> q).
QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50), ("p95", 0.95), ("p99", 0.99),
)


class SLOTracker:
    """Per-service latency/SLO bookkeeping over a metrics registry.

    All instruments live under the given prefix (default ``serve``):
    ``<p>.latency`` histogram, ``<p>.slo.good`` / ``<p>.slo.bad``
    counters, and gauges ``<p>.latency.p50/p95/p99``,
    ``<p>.slo.target_ms``, ``<p>.slo.goal``, ``<p>.slo.burn_rate``,
    ``<p>.slo.budget_remaining``, ``<p>.slo.compliance``.
    """

    def __init__(self, registry: MetricsRegistry,
                 target_ms: float = 250.0, goal: float = 0.99,
                 prefix: str = "serve") -> None:
        if target_ms <= 0:
            raise ValueError(f"SLO target must be positive, got {target_ms}")
        if not 0.0 < goal < 1.0:
            raise ValueError(f"SLO goal must be in (0, 1), got {goal}")
        self.target_ms = float(target_ms)
        self.goal = float(goal)
        self.prefix = prefix
        self._lock = threading.Lock()
        self.latency = registry.histogram(
            f"{prefix}.latency", unit="s", buckets=LATENCY_BUCKETS)
        self._good = registry.counter(f"{prefix}.slo.good")
        self._bad = registry.counter(f"{prefix}.slo.bad")
        self._quantile_gauges = {
            frag: registry.gauge(f"{prefix}.latency.{frag}", unit="s")
            for frag, _ in QUANTILES
        }
        self._burn = registry.gauge(f"{prefix}.slo.burn_rate")
        self._budget = registry.gauge(f"{prefix}.slo.budget_remaining")
        self._compliance = registry.gauge(f"{prefix}.slo.compliance")
        registry.gauge(f"{prefix}.slo.target_ms", unit="ms").set(
            self.target_ms)
        registry.gauge(f"{prefix}.slo.goal").set(self.goal)

    # -- recording ------------------------------------------------------
    def record(self, latency_s: float, ok: bool = True) -> bool:
        """Account one finished request; returns whether it was *good*
        (succeeded and met the latency target)."""
        latency_s = max(0.0, float(latency_s))
        good = bool(ok) and latency_s * 1e3 <= self.target_ms
        with self._lock:
            self.latency.observe(latency_s)
            (self._good if good else self._bad).inc()
            self._refresh_gauges()
        return good

    def _refresh_gauges(self) -> None:
        for frag, q in QUANTILES:
            value = self.latency.quantile(q)
            if value is not None:
                self._quantile_gauges[frag].set(value)
        good = self._good.value
        bad = self._bad.value
        total = good + bad
        if total <= 0:
            return
        budget = total * (1.0 - self.goal)
        burn = bad / budget if budget > 0 else 0.0
        self._burn.set(burn)
        self._budget.set(max(0.0, 1.0 - burn))
        self._compliance.set(good / total)

    # -- reading --------------------------------------------------------
    def quantile(self, q: float) -> Optional[float]:
        """Current ``q``-quantile of the latency histogram (seconds)."""
        return self.latency.quantile(q)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view for the ``stats``/``health`` ops.

        Quantiles are reported in milliseconds (human-facing ops speak
        ms; the Prometheus gauges stay in seconds).
        """
        with self._lock:
            good = self._good.value
            bad = self._bad.value
            total = good + bad
            quantiles = {
                f"{frag}_ms": (None if (v := self.latency.quantile(q))
                               is None else v * 1e3)
                for frag, q in QUANTILES
            }
        budget = total * (1.0 - self.goal)
        burn = (bad / budget) if budget > 0 else 0.0
        return {
            "target_ms": self.target_ms,
            "goal": self.goal,
            "good": int(good),
            "bad": int(bad),
            "total": int(total),
            "compliance": (good / total) if total else None,
            "burn_rate": burn if total else None,
            "budget_remaining": max(0.0, 1.0 - burn) if total else None,
            **quantiles,
        }
