"""Prometheus text exposition for the metrics registry.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` in the Prometheus
text format (version 0.0.4) and serves it from a stdlib
``http.server`` running on a daemon thread, so the serving stack gets a
``/metrics`` endpoint with zero new dependencies.

Name mapping — dotted instrument names become Prometheus names:

* every character outside ``[a-zA-Z0-9_:]`` becomes ``_``
  (``serve.requests`` → ``serve_requests``);
* counters gain the conventional ``_total`` suffix
  (``serve.requests`` → ``serve_requests_total``);
* instruments whose unit is seconds gain ``_seconds`` — a trailing
  ``_s`` shorthand is rewritten rather than doubled
  (``serve.latency`` unit ``s`` → ``serve_latency_seconds``,
  ``executor.phase_wall_s`` → ``executor_phase_wall_seconds``);
* histograms expand to ``_bucket{le="..."}`` series (cumulative,
  closing with ``le="+Inf"``) plus ``_sum`` and ``_count``.

The counterpart :func:`parse_prometheus` is a strict parser of the same
format used by the golden-file tests and the CI metrics-smoke step: it
rejects malformed sample lines, duplicate series, non-cumulative
buckets and histograms missing their ``_sum``/``_count``.
"""

from __future__ import annotations

import math
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from .metrics import MetricsRegistry

__all__ = [
    "prometheus_name",
    "escape_help",
    "escape_label_value",
    "render_prometheus",
    "parse_prometheus",
    "MetricsHTTPServer",
]

_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: ``unit`` strings that map onto a Prometheus base-unit suffix.
_UNIT_SUFFIX = {"s": "_seconds", "seconds": "_seconds",
                "bytes": "_bytes", "B": "_bytes"}


def prometheus_name(name: str, unit: str = "", kind: str = "gauge") -> str:
    """Map a dotted instrument name onto its Prometheus metric name."""
    pname = _NAME_BAD_CHARS.sub("_", name)
    if pname and pname[0].isdigit():
        pname = "_" + pname
    suffix = _UNIT_SUFFIX.get(unit, "")
    if suffix:
        if pname.endswith("_s") and suffix == "_seconds":
            pname = pname[:-2]
        if not pname.endswith(suffix):
            pname += suffix
    if kind == "counter" and not pname.endswith("_total"):
        pname += "_total"
    return pname


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` line payload (backslash and newline)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(value: str) -> str:
    """Escape a label value (backslash, double quote, newline)."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    """Prometheus sample values: shortest-roundtrip floats, with the
    spec's spellings for the non-finite values."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _format_le(edge: float) -> str:
    """``le`` label values: integral edges render without the trailing
    ``.0`` (the conventional Prometheus spelling)."""
    if edge == int(edge) and abs(edge) < 1e15:
        return str(int(edge))
    return repr(float(edge))


def render_prometheus(metrics) -> str:
    """Render a registry (or a :meth:`MetricsRegistry.snapshot` dict)
    as Prometheus exposition text.

    Unset gauges (never written) are omitted — Prometheus has no
    representation for "no value yet".  Output is sorted by metric
    name, so the text is stable across renders of the same state.
    """
    snap = metrics.snapshot() if isinstance(metrics, MetricsRegistry) \
        else metrics
    if snap is None:
        snap = {"counters": {}, "gauges": {}, "histograms": {}}
    lines: List[str] = []

    def _emit(pname: str, kind: str, source: str, unit: str) -> None:
        help_text = f"repro instrument {source}" \
                    + (f" (unit: {unit})" if unit else "")
        lines.append(f"# HELP {pname} {escape_help(help_text)}")
        lines.append(f"# TYPE {pname} {kind}")

    for name, data in sorted(snap.get("counters", {}).items()):
        pname = prometheus_name(name, data.get("unit", ""), "counter")
        _emit(pname, "counter", name, data.get("unit", ""))
        lines.append(f"{pname} {_format_value(data['value'])}")
    for name, data in sorted(snap.get("gauges", {}).items()):
        if data.get("value") is None:
            continue
        pname = prometheus_name(name, data.get("unit", ""), "gauge")
        _emit(pname, "gauge", name, data.get("unit", ""))
        lines.append(f"{pname} {_format_value(data['value'])}")
    for name, data in sorted(snap.get("histograms", {}).items()):
        pname = prometheus_name(name, data.get("unit", ""), "histogram")
        _emit(pname, "histogram", name, data.get("unit", ""))
        cumulative = 0
        for edge, count in zip(data["buckets"], data["counts"]):
            cumulative += count
            lines.append(f'{pname}_bucket{{le="{_format_le(edge)}"}} '
                         f"{cumulative}")
        cumulative += data["counts"][len(data["buckets"])]
        lines.append(f'{pname}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{pname}_sum {_format_value(data['sum'])}")
        lines.append(f"{pname}_count {data['count']}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# parsing / validation (golden tests and the CI metrics-smoke step)
# ---------------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$")
_LABEL_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_value(raw: str) -> float:
    if raw == "NaN":
        return math.nan
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    return float(raw)


def parse_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse exposition text into ``{family: {"type", "samples"}}``.

    ``samples`` is a list of ``(sample_name, labels_dict, value)``
    tuples.  Raises ``ValueError`` on malformed lines, samples without
    a preceding ``# TYPE``, duplicate series, histograms with
    non-cumulative buckets or missing ``_sum``/``_count``/``+Inf``.
    """
    families: Dict[str, Dict[str, Any]] = {}
    types: Dict[str, str] = {}
    seen: set = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: malformed TYPE line")
            fam = parts[2]
            if fam in families:
                raise ValueError(f"line {lineno}: duplicate TYPE for {fam}")
            types[fam] = parts[3]
            families[fam] = {"type": parts[3], "samples": []}
            continue
        if line.startswith("#"):
            continue  # HELP / comments
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        sname = m.group("name")
        labels: Dict[str, str] = {}
        raw_labels = m.group("labels")
        if raw_labels:
            consumed = 0
            for lm in _LABEL_RE.finditer(raw_labels):
                labels[lm.group(1)] = (
                    lm.group(2).replace('\\"', '"')
                    .replace("\\n", "\n").replace("\\\\", "\\"))
                consumed += lm.end() - lm.start()
            stripped = re.sub(r"[,\s]", "", raw_labels)
            matched = re.sub(r"[,\s]", "", "".join(
                lm.group(0) for lm in _LABEL_RE.finditer(raw_labels)))
            if stripped != matched:
                raise ValueError(
                    f"line {lineno}: malformed labels: {raw_labels!r}")
        value = _parse_value(m.group("value"))
        fam = sname
        for suffix in ("_bucket", "_sum", "_count"):
            base = sname[:-len(suffix)] if sname.endswith(suffix) else None
            if base is not None and types.get(base) in ("histogram",
                                                        "summary"):
                fam = base
                break
        if fam not in families:
            raise ValueError(
                f"line {lineno}: sample {sname!r} has no # TYPE line")
        series_key = (sname, tuple(sorted(labels.items())))
        if series_key in seen:
            raise ValueError(f"line {lineno}: duplicate series {sname!r} "
                             f"{labels!r}")
        seen.add(series_key)
        families[fam]["samples"].append((sname, labels, value))
    _validate_histograms(families)
    return families


def _validate_histograms(families: Mapping[str, Dict[str, Any]]) -> None:
    for fam, data in families.items():
        if data["type"] != "histogram":
            continue
        buckets: List[Tuple[float, float]] = []
        has_sum = has_count = False
        count_value = None
        for sname, labels, value in data["samples"]:
            if sname == f"{fam}_bucket":
                if "le" not in labels:
                    raise ValueError(f"{fam}: bucket sample without le")
                buckets.append((_parse_value(labels["le"]), value))
            elif sname == f"{fam}_sum":
                has_sum = True
            elif sname == f"{fam}_count":
                has_count = True
                count_value = value
        if not (has_sum and has_count):
            raise ValueError(f"{fam}: histogram missing _sum or _count")
        if not buckets or not math.isinf(buckets[-1][0]):
            raise ValueError(f"{fam}: histogram missing +Inf bucket")
        edges = [b[0] for b in buckets]
        counts = [b[1] for b in buckets]
        if edges != sorted(edges):
            raise ValueError(f"{fam}: bucket edges not ascending")
        if counts != sorted(counts):
            raise ValueError(f"{fam}: bucket counts not cumulative")
        if count_value is not None and counts[-1] != count_value:
            raise ValueError(
                f"{fam}: +Inf bucket ({counts[-1]}) != _count "
                f"({count_value})")


# ---------------------------------------------------------------------------
# the /metrics endpoint
# ---------------------------------------------------------------------------
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _default_provider():
    """The innermost active telemetry session's registry (late import:
    :mod:`repro.obs` imports this module during its own init)."""
    from . import current

    tel = current()
    return None if tel is None else tel.metrics


class _MetricsHandler(BaseHTTPRequestHandler):
    server_version = "repro-metrics/1.0"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0] in ("/metrics", "/"):
            try:
                registry = self.server.provider()  # type: ignore[attr-defined]
                body = render_prometheus(registry).encode()
            except Exception as exc:  # never kill the scrape loop
                self.send_error(500, explain=repr(exc))
                return
            self.send_response(200)
            self.send_header("Content-Type", CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif self.path == "/healthz":
            body = b"ok\n"
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self.send_error(404)

    def log_message(self, fmt: str, *args) -> None:
        """Scrapes are periodic; logging each one is noise."""


class MetricsHTTPServer:
    """Daemon-thread HTTP server exposing ``/metrics`` (+ ``/healthz``).

    ``provider`` is called per scrape and must return a
    :class:`MetricsRegistry`, a snapshot dict, or ``None`` (rendered as
    an empty exposition); the default provider reads the innermost
    active :class:`repro.obs.Telemetry` session at scrape time, so a
    server started before the session still exports it.

    ``port=0`` binds an ephemeral port, resolved in :attr:`port` after
    :meth:`start` — the pattern every test and the CI smoke step use.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 provider: Optional[Callable[[], Any]] = None) -> None:
        self.host = host
        self.port = int(port)
        self.provider = provider or _default_provider
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsHTTPServer":
        """Bind and start serving on a daemon thread; idempotent."""
        if self._httpd is not None:
            return self
        httpd = ThreadingHTTPServer((self.host, self.port),
                                    _MetricsHandler)
        httpd.daemon_threads = True
        httpd.provider = self.provider  # type: ignore[attr-defined]
        self.port = httpd.server_address[1]
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-metrics-http", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the endpoint down (idempotent)."""
        httpd, self._httpd = self._httpd, None
        thread, self._thread = self._thread, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
