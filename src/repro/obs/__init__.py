"""Unified telemetry: structured tracing, metrics, exportable RunReports.

The package gives the library one instrumentation surface connecting the
quantities the paper argues about — per-phase timings from the threaded
executor, FBMPK matrix-pass counters and modelled DRAM traffic, solver
convergence histories — so a single run can *demonstrate* the
``(k+1)/2`` matrix-reads claim instead of asserting it.

Usage::

    from repro.obs import Telemetry

    with Telemetry() as tel:
        op.power(x, k=4)                   # instrumented transparently
    tel.write_trace("run.trace.json")      # chrome://tracing
    report = tel.run_report(command="power", config={"k": 4})

Design contract — **zero overhead by default**: no telemetry session is
active unless one has been entered, and every instrumentation point in
the library goes through the module-level helpers below (:func:`span`,
:func:`event`, :func:`add_counter`, ...), which reduce to a global load
and an early return when inactive.  :func:`span` returns the shared
:data:`~repro.obs.tracing.NULL_SPAN` singleton when disabled, so hot
loops allocate nothing.  The guard tests in ``tests/obs`` verify both
the no-allocation property and that enabling telemetry changes no
numerical result bit.

Sessions nest (an inner ``with Telemetry()`` shadows the outer one until
it exits) and are process-global rather than thread-local on purpose:
executor worker threads must record into the session of the run that
spawned them.
"""

from __future__ import annotations

import functools
from typing import Any, Dict, List, Optional

from .exporter import (
    CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE,
    MetricsHTTPServer,
    parse_prometheus,
    prometheus_name,
    render_prometheus,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_TIME_BUCKETS,
)
from .sampler import StackSampler, write_collapsed
from .slo import LATENCY_BUCKETS, SLOTracker
from .report import (
    RUN_REPORT_SCHEMA,
    RUN_REPORT_SCHEMA_VERSION,
    build_run_report,
    diff_reports,
    format_report,
    load_report,
    platform_info,
    validate_report,
    write_report_file,
)
from .tracing import (
    NULL_SPAN,
    NullSpan,
    SpanRecord,
    TraceRecorder,
    chrome_trace_events,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "Telemetry",
    "current",
    "span",
    "event",
    "add_counter",
    "set_gauge",
    "observe",
    "instrument_solver",
    "TraceRecorder",
    "SpanRecord",
    "NullSpan",
    "NULL_SPAN",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_TIME_BUCKETS",
    "RUN_REPORT_SCHEMA",
    "RUN_REPORT_SCHEMA_VERSION",
    "build_run_report",
    "validate_report",
    "format_report",
    "diff_reports",
    "load_report",
    "write_report_file",
    "platform_info",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl",
    "render_prometheus",
    "parse_prometheus",
    "prometheus_name",
    "PROMETHEUS_CONTENT_TYPE",
    "MetricsHTTPServer",
    "StackSampler",
    "write_collapsed",
    "SLOTracker",
    "LATENCY_BUCKETS",
]

#: Stack of activated sessions; the innermost one receives telemetry.
_ACTIVE: List["Telemetry"] = []


class Telemetry:
    """One telemetry session: a trace recorder plus a metrics registry.

    Activate with ``with tel:`` (or :meth:`activate`/:meth:`deactivate`)
    to make the session the process-wide sink of the library's
    instrumentation points, then export through :meth:`write_trace`,
    :meth:`write_trace_jsonl`, :meth:`write_metrics` or
    :meth:`run_report`.
    """

    def __init__(self) -> None:
        self.recorder = TraceRecorder()
        self.metrics = MetricsRegistry()

    # -- lifecycle ------------------------------------------------------
    def activate(self) -> "Telemetry":
        """Push this session onto the active stack (idempotent)."""
        if self not in _ACTIVE:
            _ACTIVE.append(self)
        return self

    def deactivate(self) -> None:
        """Remove this session from the active stack (idempotent)."""
        if self in _ACTIVE:
            _ACTIVE.remove(self)

    def __enter__(self) -> "Telemetry":
        return self.activate()

    def __exit__(self, *exc) -> None:
        self.deactivate()

    # -- exports --------------------------------------------------------
    def write_trace(self, path) -> None:
        """Write the Chrome trace-event JSON for this session."""
        write_chrome_trace(self.recorder, path)

    def write_trace_jsonl(self, path) -> None:
        """Write the span/event stream as JSON lines."""
        write_jsonl(self.recorder, path)

    def write_metrics(self, path) -> None:
        """Write the metrics snapshot as indented JSON."""
        import json

        with open(path, "w") as fh:
            json.dump(self.metrics.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def run_report(self, command: str = "",
                   config: Optional[Dict[str, Any]] = None
                   ) -> Dict[str, Any]:
        """Assemble the schema-versioned RunReport of this session."""
        return build_run_report(self.metrics, self.recorder,
                                command=command, config=config)


def current() -> Optional[Telemetry]:
    """The innermost active session, or None (telemetry disabled)."""
    return _ACTIVE[-1] if _ACTIVE else None


# ---------------------------------------------------------------------------
# hot-path helpers (the library's only instrumentation entry points)
# ---------------------------------------------------------------------------
def span(name: str, **attrs):
    """Open a span on the active session; :data:`NULL_SPAN` if none."""
    if not _ACTIVE:
        return NULL_SPAN
    return _ACTIVE[-1].recorder.span(name, **attrs)


def event(name: str, **attrs) -> None:
    """Record an instant event on the active session (no-op if none)."""
    if _ACTIVE:
        _ACTIVE[-1].recorder.event(name, **attrs)


def add_counter(name: str, value: float = 1.0, unit: str = "") -> None:
    """Increment a counter on the active session (no-op if none)."""
    if _ACTIVE:
        _ACTIVE[-1].metrics.counter(name, unit=unit).inc(value)


def set_gauge(name: str, value: float, unit: str = "") -> None:
    """Set a gauge on the active session (no-op if none)."""
    if _ACTIVE:
        _ACTIVE[-1].metrics.gauge(name, unit=unit).set(value)


def observe(name: str, value: float, unit: str = "",
            buckets=None) -> None:
    """Record a histogram observation on the active session.

    ``buckets`` (optional) sets the bucket boundaries if this call
    creates the histogram; an existing histogram keeps the buckets it
    was created with (first creation fixes them)."""
    if _ACTIVE:
        metrics = _ACTIVE[-1].metrics
        if buckets is None:
            metrics.histogram(name, unit=unit).observe(value)
        else:
            metrics.histogram(name, unit=unit,
                              buckets=buckets).observe(value)


def instrument_solver(name: str):
    """Decorator adding convergence telemetry to an iterative solver.

    The wrapped function must return a result carrying ``iterations``,
    ``residual_norms`` and ``status`` (the structured-status convention
    of :mod:`repro.solvers`).  When a session is active the solve runs
    inside a ``solver.<name>`` span, each recorded residual becomes a
    ``solver.residual`` event (the convergence history), and the
    iteration count / final residual / status land in the metrics
    registry.  When no session is active the only cost is one wrapper
    call and a global check — the solver body is untouched either way,
    which is what keeps results bit-identical with telemetry on and off.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _ACTIVE:
                return fn(*args, **kwargs)
            tel = _ACTIVE[-1]
            with tel.recorder.span(f"solver.{name}"):
                result = fn(*args, **kwargs)
            record_convergence(name, result)
            return result

        return wrapper

    return decorate


def record_convergence(name: str, result) -> None:
    """Publish a solver result's convergence history to the active
    session (used by :func:`instrument_solver` and the Chebyshev solver,
    whose tuple return predates the structured results)."""
    if not _ACTIVE:
        return
    tel = _ACTIVE[-1]
    norms = list(getattr(result, "residual_norms", None) or [])
    iterations = getattr(result, "iterations", None)
    status = getattr(result, "status", None)
    for i, rn in enumerate(norms):
        tel.recorder.event("solver.residual", solver=name, iteration=i,
                           residual=float(rn))
    tel.metrics.counter(f"solver.{name}.runs").inc()
    if iterations is not None:
        tel.metrics.counter(f"solver.{name}.iterations").inc(iterations)
    if norms:
        tel.metrics.gauge(f"solver.{name}.final_residual").set(norms[-1])
    if status:
        tel.metrics.counter(f"solver.{name}.status.{status}").inc()
