"""RunReport: the schema-versioned JSON artifact of an instrumented run.

A RunReport freezes one CLI/bench invocation into a machine-diffable
document: the metric snapshot (executor barriers, matrix-pass counters,
modelled DRAM bytes, solver convergence), a per-name span summary, the
platform the run executed on, and the configuration that produced it.
Benchmark trajectories then become data — ``python -m repro report A B``
diffs two runs, and ``tools/check_report.py`` (used by CI and the
``report`` subcommand) validates any report against the schema below.

Schema (version 1)::

    {
      "schema": "repro.run_report",
      "schema_version": 1,
      "created_unix": <float, seconds since the epoch>,
      "command": <str, e.g. "power">,
      "config": <object, JSON-safe invocation parameters>,
      "platform": {"python": str, "implementation": str, "os": str,
                   "machine": str, "cpu_count": int, "numpy": str,
                   "repro_version": str},
      "metrics": {"counters": {name: {"value": num, "unit": str}},
                  "gauges": {name: {"value": num|null, "unit": str}},
                  "histograms": {name: {"unit": str, "buckets": [num...],
                                        "counts": [int...],  # len+1
                                        "sum": num, "count": int}}},
      "spans": {"total": int,
                "summary": {name: {"count": int, "total_s": num,
                                   "max_s": num}}}
    }

The validator is hand-rolled (no ``jsonschema`` dependency) and returns
*all* problems it finds, in the spirit of
:class:`repro.robust.validate.ValidationReport`.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import time
from typing import Any, Dict, List, Optional

from .metrics import MetricsRegistry
from .tracing import TraceRecorder, _json_safe

__all__ = [
    "RUN_REPORT_SCHEMA",
    "RUN_REPORT_SCHEMA_VERSION",
    "build_run_report",
    "platform_info",
    "validate_report",
    "load_report",
    "write_report_file",
    "format_report",
    "diff_reports",
]

RUN_REPORT_SCHEMA = "repro.run_report"
RUN_REPORT_SCHEMA_VERSION = 1


def platform_info() -> Dict[str, Any]:
    """Machine/interpreter identification embedded in every report."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "unknown"
    try:
        from .. import __version__ as repro_version
    except Exception:  # pragma: no cover - partial installs
        repro_version = "unknown"
    return {
        "python": _platform.python_version(),
        "implementation": _platform.python_implementation(),
        "os": f"{_platform.system()} {_platform.release()}",
        "machine": _platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "numpy": numpy_version,
        "repro_version": repro_version,
    }


def build_run_report(
    metrics: Optional[MetricsRegistry] = None,
    recorder: Optional[TraceRecorder] = None,
    command: str = "",
    config: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a schema-valid RunReport dict from a telemetry session."""
    snapshot = (metrics or MetricsRegistry()).snapshot()
    if recorder is not None:
        spans = {"total": len(recorder), "summary": recorder.summary()}
    else:
        spans = {"total": 0, "summary": {}}
    config = {str(k): _json_safe(v) for k, v in (config or {}).items()}
    return {
        "schema": RUN_REPORT_SCHEMA,
        "schema_version": RUN_REPORT_SCHEMA_VERSION,
        "created_unix": time.time(),
        "command": str(command),
        "config": config,
        "platform": platform_info(),
        "metrics": snapshot,
        "spans": spans,
    }


def write_report_file(report: Dict[str, Any], path) -> None:
    """Serialise ``report`` as indented JSON to ``path``."""
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path) -> Dict[str, Any]:
    """Read a report file; raises ``OSError``/``ValueError`` on failure."""
    with open(path) as fh:
        obj = json.load(fh)
    if not isinstance(obj, dict):
        raise ValueError(f"{path}: report root must be a JSON object")
    return obj


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------
def _is_num(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def _check_instruments(section: Any, kind: str, errors: List[str]) -> None:
    if not isinstance(section, dict):
        errors.append(f"metrics.{kind}: expected object")
        return
    for name, inst in section.items():
        where = f"metrics.{kind}[{name!r}]"
        if not isinstance(inst, dict):
            errors.append(f"{where}: expected object")
            continue
        if not isinstance(inst.get("unit", ""), str):
            errors.append(f"{where}.unit: expected string")
        if kind == "histograms":
            buckets = inst.get("buckets")
            counts = inst.get("counts")
            if not (isinstance(buckets, list) and all(map(_is_num, buckets))):
                errors.append(f"{where}.buckets: expected number list")
                continue
            if any(b <= a for a, b in zip(buckets[:-1], buckets[1:])):
                errors.append(f"{where}.buckets: not strictly increasing")
            if not (isinstance(counts, list)
                    and all(isinstance(c, int) and not isinstance(c, bool)
                            and c >= 0 for c in counts)):
                errors.append(f"{where}.counts: expected non-negative "
                              f"integer list")
            elif len(counts) != len(buckets) + 1:
                errors.append(f"{where}.counts: expected "
                              f"{len(buckets) + 1} slots, got {len(counts)}")
            if not _is_num(inst.get("sum")):
                errors.append(f"{where}.sum: expected number")
            if not (isinstance(inst.get("count"), int)
                    and inst.get("count", -1) >= 0):
                errors.append(f"{where}.count: expected non-negative int")
        else:
            value = inst.get("value")
            if kind == "gauges" and value is None:
                continue  # never-set gauge
            if not _is_num(value):
                errors.append(f"{where}.value: expected number")
            elif kind == "counters" and value < 0:
                errors.append(f"{where}.value: counter cannot be negative")


def validate_report(report: Any) -> List[str]:
    """Validate a RunReport object; returns all schema violations
    (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(report, dict):
        return ["report root must be a JSON object"]
    if report.get("schema") != RUN_REPORT_SCHEMA:
        errors.append(f"schema: expected {RUN_REPORT_SCHEMA!r}, "
                      f"got {report.get('schema')!r}")
    version = report.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool):
        errors.append("schema_version: expected integer")
    elif version > RUN_REPORT_SCHEMA_VERSION:
        errors.append(f"schema_version: {version} is newer than the "
                      f"supported {RUN_REPORT_SCHEMA_VERSION}")
    if not _is_num(report.get("created_unix")):
        errors.append("created_unix: expected number")
    if not isinstance(report.get("command"), str):
        errors.append("command: expected string")
    if not isinstance(report.get("config"), dict):
        errors.append("config: expected object")
    plat = report.get("platform")
    if not isinstance(plat, dict):
        errors.append("platform: expected object")
    else:
        for key in ("python", "os", "machine"):
            if not isinstance(plat.get(key), str):
                errors.append(f"platform.{key}: expected string")
        if not isinstance(plat.get("cpu_count"), int):
            errors.append("platform.cpu_count: expected integer")
    metrics = report.get("metrics")
    if not isinstance(metrics, dict):
        errors.append("metrics: expected object")
    else:
        for kind in ("counters", "gauges", "histograms"):
            if kind not in metrics:
                errors.append(f"metrics.{kind}: missing")
            else:
                _check_instruments(metrics[kind], kind, errors)
    spans = report.get("spans")
    if not isinstance(spans, dict):
        errors.append("spans: expected object")
    else:
        if not (isinstance(spans.get("total"), int)
                and spans.get("total", -1) >= 0):
            errors.append("spans.total: expected non-negative integer")
        summary = spans.get("summary")
        if not isinstance(summary, dict):
            errors.append("spans.summary: expected object")
        else:
            for name, agg in summary.items():
                where = f"spans.summary[{name!r}]"
                if not isinstance(agg, dict):
                    errors.append(f"{where}: expected object")
                    continue
                count = agg.get("count")
                if not (isinstance(count, int) and count >= 1):
                    errors.append(f"{where}.count: expected positive int")
                for key in ("total_s", "max_s"):
                    if not (_is_num(agg.get(key)) and agg.get(key) >= 0):
                        errors.append(f"{where}.{key}: expected "
                                      f"non-negative number")
    return errors


# ---------------------------------------------------------------------------
# pretty-printing and diffing
# ---------------------------------------------------------------------------
def _fmt_num(v: Optional[float]) -> str:
    if v is None:
        return "-"
    if isinstance(v, int) or float(v).is_integer():
        return f"{int(v)}"
    return f"{v:.6g}"


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of a RunReport."""
    lines = [
        f"RunReport v{report.get('schema_version')} — "
        f"command `{report.get('command') or '?'}`",
    ]
    plat = report.get("platform", {})
    lines.append(
        f"platform: python {plat.get('python', '?')} / "
        f"numpy {plat.get('numpy', '?')} on {plat.get('os', '?')} "
        f"({plat.get('machine', '?')}, {plat.get('cpu_count', '?')} cpus)")
    config = report.get("config", {})
    if config:
        shown = ", ".join(f"{k}={config[k]}" for k in sorted(config)
                          if config[k] is not None)
        lines.append(f"config: {shown}")
    metrics = report.get("metrics", {})
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    if counters or gauges:
        lines.append("")
        lines.append("metrics:")
        for name in sorted(counters):
            inst = counters[name]
            unit = f" {inst.get('unit')}" if inst.get("unit") else ""
            lines.append(f"  {name} = {_fmt_num(inst.get('value'))}{unit}")
        for name in sorted(gauges):
            inst = gauges[name]
            unit = f" {inst.get('unit')}" if inst.get("unit") else ""
            lines.append(f"  {name} = {_fmt_num(inst.get('value'))}{unit}")
    histograms = metrics.get("histograms", {})
    for name in sorted(histograms):
        inst = histograms[name]
        count = inst.get("count", 0)
        mean = inst.get("sum", 0.0) / count if count else 0.0
        lines.append(f"  {name}: n={count} mean={mean:.3g}"
                     f"{' ' + inst.get('unit') if inst.get('unit') else ''}")
    summary = report.get("spans", {}).get("summary", {})
    if summary:
        lines.append("")
        lines.append("spans:")
        for name in sorted(summary):
            agg = summary[name]
            lines.append(
                f"  {name}: x{agg.get('count')} "
                f"total {agg.get('total_s', 0.0) * 1e3:.2f} ms "
                f"(max {agg.get('max_s', 0.0) * 1e3:.2f} ms)")
    return "\n".join(lines)


def diff_reports(a: Dict[str, Any], b: Dict[str, Any]) -> str:
    """Line-per-metric comparison of two reports (``b`` relative to
    ``a``); the machine-diffable view of a benchmark trajectory."""
    lines = [
        f"diff: {a.get('command') or '?'} -> {b.get('command') or '?'}",
    ]
    for kind in ("counters", "gauges"):
        av = a.get("metrics", {}).get(kind, {})
        bv = b.get("metrics", {}).get(kind, {})
        for name in sorted(set(av) | set(bv)):
            x = av.get(name, {}).get("value")
            y = bv.get(name, {}).get("value")
            if x == y:
                continue
            if x is not None and y is not None and _is_num(x) and _is_num(y):
                delta = y - x
                rel = f" ({delta / x:+.1%})" if x else ""
                lines.append(f"  {name}: {_fmt_num(x)} -> {_fmt_num(y)} "
                             f"[{delta:+.6g}{rel}]")
            else:
                lines.append(f"  {name}: {_fmt_num(x) if x is not None else 'absent'} -> "
                             f"{_fmt_num(y) if y is not None else 'absent'}")
    asum = a.get("spans", {}).get("summary", {})
    bsum = b.get("spans", {}).get("summary", {})
    for name in sorted(set(asum) | set(bsum)):
        x = asum.get(name, {}).get("total_s")
        y = bsum.get(name, {}).get("total_s")
        if x is None or y is None:
            lines.append(f"  span {name}: "
                         f"{'absent' if x is None else _fmt_num(x)} -> "
                         f"{'absent' if y is None else _fmt_num(y)}")
        elif x != y:
            lines.append(f"  span {name}: total {x * 1e3:.2f} ms -> "
                         f"{y * 1e3:.2f} ms")
    if len(lines) == 1:
        lines.append("  (no metric differences)")
    return "\n".join(lines)
