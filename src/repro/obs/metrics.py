"""Metrics registry: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` per telemetry session unifies the numbers
that previously lived in scattered ad-hoc structures — executor barrier
counts and per-thread busy time, solver iteration/residual history,
modelled DRAM traffic, matrix statistics — behind a single
:meth:`~MetricsRegistry.snapshot` that the :class:`~repro.obs.report`
machinery embeds into a RunReport.

All instruments are thread-safe (executor workers increment counters
concurrently) and identified by a dotted name plus an optional unit
string; re-requesting a name returns the existing instrument, and
requesting it as a *different* instrument type is an error (catching
``counter`` vs ``gauge`` mixups at the call site).
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
]

#: Default histogram buckets for second-valued durations: 1 µs .. 100 s
#: in decade steps (phase walls, solver times, export times all fit).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)


class Counter:
    """Monotonically increasing sum (e.g. ``executor.barriers``)."""

    __slots__ = ("name", "unit", "_value", "_lock")

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, value: float = 1.0) -> None:
        """Add ``value`` (must be non-negative) to the counter."""
        if value < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += value

    @property
    def value(self) -> float:
        """Current accumulated total."""
        with self._lock:
            return self._value


class Gauge:
    """Last-written value (e.g. ``solver.cg.final_residual``)."""

    __slots__ = ("name", "unit", "_value", "_lock")

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self._value: Optional[float] = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> Optional[float]:
        """Most recent value (None when never set)."""
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram (cumulative-style bucket edges).

    ``counts[i]`` counts observations ``<= buckets[i]`` exclusive of
    earlier buckets; the final slot counts overflow observations above
    the last edge.  ``sum``/``count`` allow mean reconstruction.

    Per-bucket counts, the running sum and the observation count are
    updated under one lock and read back together through
    :meth:`state`, so a snapshot can never show a sum that disagrees
    with its counts (a scrape racing an ``observe`` sees either all of
    the observation or none of it).
    """

    __slots__ = ("name", "unit", "buckets", "_counts", "_sum", "_count",
                 "_lock")

    def __init__(self, name: str, unit: str = "",
                 buckets: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        edges = tuple(float(b) for b in buckets)
        if not edges or any(b <= a for a, b in zip(edges[:-1], edges[1:])):
            raise ValueError("histogram buckets must be strictly increasing")
        self.name = name
        self.unit = unit
        self.buckets = edges
        self._counts = [0] * (len(edges) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation (bucket count, sum and count move
        together under the lock)."""
        value = float(value)
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    def state(self) -> Tuple[List[int], float, int]:
        """One consistent ``(counts, sum, count)`` triple, read under a
        single lock acquisition — the only way to get a view in which
        ``sum(counts) == count`` is guaranteed."""
        with self._lock:
            return list(self._counts), self._sum, self._count

    @property
    def counts(self) -> List[int]:
        """Per-bucket counts (length ``len(buckets) + 1``)."""
        with self._lock:
            return list(self._counts)

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) by linear
        interpolation within the bucket the rank falls in.

        Bucket semantics match Prometheus ``histogram_quantile``:

        * the histogram is empty → ``None`` (no estimate possible);
        * the rank lands in the first bucket → interpolate from 0 (or
          from the bucket edge itself when the edge is negative, since
          0 would then not be a lower bound);
        * the rank lands in the overflow bucket (above the last edge) →
          the last edge is returned — the histogram carries no upper
          bound to interpolate toward, so the estimate saturates.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        counts, _, total = self.state()
        if total == 0:
            return None
        rank = q * total
        cumulative = 0
        for i, edge in enumerate(self.buckets):
            prev_cum = cumulative
            cumulative += counts[i]
            if cumulative >= rank:
                lo = self.buckets[i - 1] if i > 0 else min(0.0, edge)
                if counts[i] == 0:  # rank == 0 edge case
                    return lo
                frac = (rank - prev_cum) / counts[i]
                return lo + (edge - lo) * max(0.0, min(1.0, frac))
        # Rank beyond the last edge: saturate at the last finite edge.
        return self.buckets[-1]


class MetricsRegistry:
    """Name-keyed store of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, cls, factory):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = self._instruments[name] = factory()
            elif not isinstance(inst, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, requested {cls.__name__}")
            return inst

    def counter(self, name: str, unit: str = "") -> Counter:
        """Get or create the counter ``name``."""
        return self._get(name, Counter, lambda: Counter(name, unit))

    def gauge(self, name: str, unit: str = "") -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(name, Gauge, lambda: Gauge(name, unit))

    def histogram(self, name: str, unit: str = "",
                  buckets: Sequence[float] = DEFAULT_TIME_BUCKETS
                  ) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get(name, Histogram,
                         lambda: Histogram(name, unit, buckets))

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-ready view of every instrument, keyed by type.

        This is the exact shape the RunReport ``metrics`` section (and
        the ``--metrics`` file) carries; see
        :func:`repro.obs.report.validate_report` for the schema.
        """
        with self._lock:
            instruments = dict(self._instruments)
        out: Dict[str, Dict[str, Any]] = {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        for name, inst in sorted(instruments.items()):
            if isinstance(inst, Counter):
                out["counters"][name] = {
                    "value": inst.value, "unit": inst.unit}
            elif isinstance(inst, Gauge):
                out["gauges"][name] = {
                    "value": inst.value, "unit": inst.unit}
            else:
                counts, total, count = inst.state()
                out["histograms"][name] = {
                    "unit": inst.unit,
                    "buckets": list(inst.buckets),
                    "counts": counts,
                    "sum": total,
                    "count": count,
                }
        return out
