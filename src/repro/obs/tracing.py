"""Structured tracing core: nestable spans, a thread-safe recorder, and
exporters to JSONL and the Chrome ``chrome://tracing`` trace-event format.

The design mirrors the fault-injection registry of
:mod:`repro.robust.faults`: instrumented code calls the module-level
helpers in :mod:`repro.obs` unconditionally, and they dispatch to an
active :class:`TraceRecorder` only when a telemetry session has been
activated — otherwise they return the shared :data:`NULL_SPAN` singleton,
so tracing costs one global load plus a no-op context manager on the hot
path (the zero-overhead-by-default guarantee the guard tests pin down).

Span semantics:

* spans nest per thread — each recording thread keeps its own stack, so
  a span started inside an executor worker parents correctly to spans of
  that worker, never to a span of another thread;
* attributes are free-form key/value pairs; the conventional keys used
  by the library are ``phase``, ``colour``, ``block``, ``thread``,
  ``sweep`` and ``power_step`` (see the span taxonomy in README);
* timestamps come from :func:`time.perf_counter` relative to the
  recorder's construction, so ``ts``/``dur`` are non-negative and a
  child's ``[ts, ts + dur]`` interval always nests inside its parent's.
"""

from __future__ import annotations

import json
import os
import secrets
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "SpanRecord",
    "NullSpan",
    "NULL_SPAN",
    "TraceRecorder",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_jsonl",
]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span (or instant event, when ``dur == 0.0`` and
    ``kind == "event"``).

    ``ts``/``dur`` are seconds relative to the owning recorder's epoch;
    ``thread`` is the OS thread ident the span ran on; ``span_id`` and
    ``parent_id`` encode the per-thread nesting (``parent_id`` is None
    for roots).  ``pid`` is None for spans recorded in this process and
    the worker's OS pid for spans merged from a process-pool span ring
    (see :mod:`repro.obs.spanring`) — the Chrome exporter turns it into
    a per-process lane.
    """

    name: str
    ts: float
    dur: float
    thread: int
    span_id: int
    parent_id: Optional[int]
    kind: str = "span"
    attrs: Dict[str, Any] = field(default_factory=dict)
    pid: Optional[int] = None


class NullSpan:
    """No-op context manager returned when no recorder is active.

    A single shared instance (:data:`NULL_SPAN`) serves every disabled
    call site — entering it allocates nothing, which is what keeps
    instrumentation free when telemetry is off.
    """

    __slots__ = ()

    #: Uniform access with :class:`_Span` for code that propagates the
    #: open span's id (e.g. into process-pool workers): -1 = no span.
    span_id = -1

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        """Attribute updates are discarded."""


#: The shared disabled-span singleton (identity-checked by the guard
#: tests: repeated disabled calls must not allocate).
NULL_SPAN = NullSpan()


class _Span:
    """Live span handle; becomes a :class:`SpanRecord` on exit."""

    __slots__ = ("_rec", "name", "attrs", "_t0", "span_id", "parent_id")

    def __init__(self, rec: "TraceRecorder", name: str,
                 attrs: Dict[str, Any]) -> None:
        self._rec = rec
        self.name = name
        self.attrs = attrs
        self._t0 = 0.0
        self.span_id = -1
        self.parent_id: Optional[int] = None

    def set(self, **attrs) -> None:
        """Attach/overwrite attributes on the open span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self._t0 = self._rec._now()
        self.span_id, self.parent_id = self._rec._push(self.name)
        return self

    def __exit__(self, *exc) -> bool:
        dur = self._rec._now() - self._t0
        self._rec._pop(self, dur)
        return False


class TraceRecorder:
    """Thread-safe in-memory span recorder.

    Spans are appended on completion (exit order); :meth:`records`
    returns them sorted by start time so exports read chronologically.
    """

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._next_id = 0
        self._local = threading.local()
        #: Session trace id (63-bit random): propagated into process-pool
        #: workers so their merged spans correlate back to this recorder.
        self.trace_id = secrets.randbits(63)
        #: thread ident -> name of the innermost open span on that
        #: thread (the sampling profiler reads this cross-thread).
        self._open_names: Dict[int, str] = {}

    # -- internal clock / stack ----------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _names(self) -> List[str]:
        names = getattr(self._local, "names", None)
        if names is None:
            names = self._local.names = []
        return names

    def _push(self, name: str) -> tuple:
        stack = self._stack()
        parent = stack[-1] if stack else None
        ident = threading.get_ident()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            self._open_names[ident] = name
        stack.append(span_id)
        self._names().append(name)
        return span_id, parent

    def _pop(self, span: _Span, dur: float) -> None:
        stack = self._stack()
        if stack and stack[-1] == span.span_id:
            stack.pop()
        else:  # pragma: no cover - misnested exit (defensive)
            try:
                stack.remove(span.span_id)
            except ValueError:
                pass
        names = self._names()
        if names:
            names.pop()
        ident = threading.get_ident()
        record = SpanRecord(
            name=span.name, ts=span._t0, dur=max(dur, 0.0),
            thread=ident, span_id=span.span_id,
            parent_id=span.parent_id, kind="span", attrs=dict(span.attrs))
        with self._lock:
            self._records.append(record)
            if names:
                self._open_names[ident] = names[-1]
            else:
                self._open_names.pop(ident, None)

    # -- public API -----------------------------------------------------
    def span(self, name: str, **attrs) -> _Span:
        """Open a span context manager; attributes may be passed here or
        via :meth:`_Span.set` while the span is open."""
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record a zero-duration instant event at the current time."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            self._records.append(SpanRecord(
                name=name, ts=self._now(), dur=0.0,
                thread=threading.get_ident(), span_id=span_id,
                parent_id=parent, kind="event", attrs=dict(attrs)))

    def add_record(self, record: SpanRecord) -> None:
        """Append a finished foreign span — one merged in from another
        process's span ring (its ``span_id`` lives in that process's id
        space; set ``pid`` so exports keep the lanes apart)."""
        with self._lock:
            self._records.append(record)

    def active_span_name(self, thread_ident: int) -> Optional[str]:
        """Name of the innermost span currently open on the given
        thread, or None — readable from *any* thread (the sampling
        profiler tags stacks with it)."""
        with self._lock:
            return self._open_names.get(thread_ident)

    def from_monotonic(self, t_mono: float) -> float:
        """Convert a ``time.monotonic()`` stamp (e.g. one written by a
        pool worker into shared memory) to this recorder's timebase."""
        return t_mono + (time.perf_counter() - time.monotonic()) \
            - self._epoch

    def records(self) -> List[SpanRecord]:
        """Snapshot of all finished spans/events, sorted by start time."""
        with self._lock:
            out = list(self._records)
        out.sort(key=lambda r: (r.ts, r.span_id))
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Aggregate per span name: occurrence count, total and max
        duration (the RunReport's ``spans`` section)."""
        out: Dict[str, Dict[str, float]] = {}
        for r in self.records():
            if r.kind != "span":
                continue
            agg = out.setdefault(r.name,
                                 {"count": 0, "total_s": 0.0, "max_s": 0.0})
            agg["count"] += 1
            agg["total_s"] += r.dur
            agg["max_s"] = max(agg["max_s"], r.dur)
        return out


def _json_safe(value):
    """Coerce attribute values to JSON-serialisable scalars."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        try:
            return value.item()
        except Exception:  # pragma: no cover - exotic array-likes
            pass
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return str(value)


def _safe_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    return {str(k): _json_safe(v) for k, v in attrs.items()}


def chrome_trace_events(recorder: TraceRecorder) -> Dict[str, Any]:
    """Render the recorder as a ``chrome://tracing`` trace-event object.

    Spans become complete (``"X"``) events with microsecond ``ts``/``dur``
    and instant events become ``"i"`` events; the list is sorted by
    ``ts``, so any trace viewer (and the property tests) see monotonic
    non-negative timestamps.
    """
    pid = os.getpid()
    events: List[Dict[str, Any]] = []
    foreign_pids: Dict[int, None] = {}
    for r in recorder.records():
        ev: Dict[str, Any] = {
            "name": r.name,
            "cat": "repro",
            "ph": "X" if r.kind == "span" else "i",
            "ts": max(r.ts, 0.0) * 1e6,
            "pid": pid if r.pid is None else r.pid,
            "tid": r.thread,
            "args": _safe_attrs(r.attrs),
        }
        if r.pid is not None and r.pid != pid:
            foreign_pids.setdefault(r.pid)
        if r.kind == "span":
            ev["dur"] = max(r.dur, 0.0) * 1e6
        else:
            ev["s"] = "t"  # thread-scoped instant
        events.append(ev)
    events.sort(key=lambda e: e["ts"])
    # Metadata events name the lanes: the dispatcher process plus one
    # lane per pool-worker pid whose spans were merged in.
    meta: List[Dict[str, Any]] = []
    if foreign_pids:
        meta.append({"name": "process_name", "ph": "M", "pid": pid,
                     "tid": 0, "args": {"name": f"dispatcher ({pid})"}})
        for fpid in sorted(foreign_pids):
            meta.append({"name": "process_name", "ph": "M", "pid": fpid,
                         "tid": 0, "args": {"name": f"worker ({fpid})"}})
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(recorder: TraceRecorder, path) -> None:
    """Write the Chrome trace-event JSON for ``recorder`` to ``path``."""
    with open(path, "w") as fh:
        json.dump(chrome_trace_events(recorder), fh)
        fh.write("\n")


def write_jsonl(recorder: TraceRecorder, path) -> None:
    """Write one JSON object per span/event (machine-grep-friendly)."""
    with open(path, "w") as fh:
        for r in recorder.records():
            fh.write(json.dumps({
                "name": r.name,
                "kind": r.kind,
                "ts": r.ts,
                "dur": r.dur,
                "thread": r.thread,
                "span_id": r.span_id,
                "parent_id": r.parent_id,
                "pid": r.pid,
                "attrs": _safe_attrs(r.attrs),
            }))
            fh.write("\n")
