"""Cross-process span rings: worker-recorded spans, dispatcher-merged.

The process-pool workers of :mod:`repro.parallel.procexec` cannot reach
the parent's :class:`~repro.obs.tracing.TraceRecorder` — it lives on the
other side of a ``fork``.  What they *can* reach is the shared-memory
arena the pool already maps.  This module defines a fixed-capacity,
lock-free span ring laid out over three plain numpy arrays in that
arena — one single-writer/single-reader ring per worker — plus the
merge step that folds the worker records back into the dispatcher's
recorder as ordinary :class:`~repro.obs.tracing.SpanRecord` entries
with the worker's OS pid attached, so ``chrome://tracing`` shows one
lane per process.

Record layout (one record = one row across the two data arrays):

===========  =====  ====================================================
field        array  meaning
===========  =====  ====================================================
kind         ints   :data:`KIND_EXEC` (bin execution) /
                    :data:`KIND_WAIT` (idle between phases = barrier
                    wait + dispatch latency, measured worker-side)
phase        ints   phase index within the ``run_phases`` call
color        ints   colour of the phase
n_blocks     ints   block tasks in the worker's bin
parent_id    ints   span id of the dispatcher's ``executor.phase`` span
                    (-1 = none)
trace_id     ints   the dispatcher recorder's 63-bit trace id
sweep        ints   index into :data:`repro.parallel.procexec.SWEEPS`
pid          ints   the worker's OS pid (stamped by the worker itself,
                    so the merge needs no liveness assumptions)
t0, dur      flts   ``time.monotonic()`` start + duration in seconds
===========  =====  ====================================================

Correlation contract: every record carries the trace id the dispatcher
propagated in the phase descriptor; :meth:`RingReader.drain` merges
**only** records stamped with the merging recorder's own trace id —
records left over from a previous telemetry session can never leak into
the wrong trace.  Timestamps are ``CLOCK_MONOTONIC`` (system-wide on
Linux), converted to the recorder's timebase at merge time.

Overflow: a writer that laps the reader overwrites oldest-first; the
reader detects the lap, resynchronises to the oldest surviving record
and reports how many were dropped (surfaced as the
``procexec.spans_dropped`` counter).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .tracing import SpanRecord, TraceRecorder

__all__ = [
    "KIND_EXEC",
    "KIND_WAIT",
    "KIND_NAMES",
    "RING_FIELDS_I",
    "RING_FIELDS_F",
    "DEFAULT_RING_CAPACITY",
    "ring_shapes",
    "RingWriter",
    "RingReader",
]

KIND_EXEC = 1
KIND_WAIT = 2

#: Span names the merge step gives each record kind.
KIND_NAMES = {KIND_EXEC: "procexec.worker.exec",
              KIND_WAIT: "procexec.worker.wait"}

#: Integer fields per record (int64).
RING_FIELDS_I = ("kind", "phase", "color", "n_blocks", "parent_id",
                 "trace_id", "sweep", "pid")
#: Float fields per record (float64).
RING_FIELDS_F = ("t0", "dur")

#: Records retained per worker before the ring wraps.
DEFAULT_RING_CAPACITY = 2048


def ring_shapes(n_workers: int, capacity: int = DEFAULT_RING_CAPACITY
                ) -> Tuple[Tuple[int, ...], Tuple[int, ...],
                           Tuple[int, ...]]:
    """Shapes of the ``(ints, floats, counts)`` backing arrays."""
    return ((n_workers, capacity, len(RING_FIELDS_I)),
            (n_workers, capacity, len(RING_FIELDS_F)),
            (n_workers,))


class RingWriter:
    """Worker-side handle: append records to this worker's ring slice.

    Single-writer by construction (each worker owns row ``worker_id``);
    the write counter is bumped *after* the record body is written, so a
    reader that stops at the counter never sees a torn record.
    """

    __slots__ = ("_ints", "_floats", "_counts", "_wid", "_cap")

    def __init__(self, ints: np.ndarray, floats: np.ndarray,
                 counts: np.ndarray, worker_id: int) -> None:
        self._ints = ints
        self._floats = floats
        self._counts = counts
        self._wid = int(worker_id)
        self._cap = int(ints.shape[1])

    def record(self, kind: int, phase: int, color: int, n_blocks: int,
               parent_id: int, trace_id: int, sweep: int, pid: int,
               t0: float, dur: float) -> None:
        """Append one span record (oldest record is overwritten when
        the ring is full)."""
        n = int(self._counts[self._wid])
        slot = n % self._cap
        self._ints[self._wid, slot] = (kind, phase, color, n_blocks,
                                       parent_id, trace_id, sweep, pid)
        self._floats[self._wid, slot, 0] = t0
        self._floats[self._wid, slot, 1] = dur
        self._counts[self._wid] = n + 1


class RingReader:
    """Dispatcher-side handle: drain new records into a recorder.

    Keeps one read cursor per worker ring; each :meth:`drain` call
    merges everything written since the previous call.
    """

    def __init__(self, ints: np.ndarray, floats: np.ndarray,
                 counts: np.ndarray) -> None:
        self._ints = ints
        self._floats = floats
        self._counts = counts
        self._cap = int(ints.shape[1])
        self._read: List[int] = [0] * int(ints.shape[0])
        self._next_foreign_id = -2  # -1 is "no parent"

    def drain(self, recorder: TraceRecorder,
              sweep_names: Optional[Tuple[str, ...]] = None
              ) -> Tuple[int, int]:
        """Merge every unread record carrying ``recorder.trace_id``.

        Returns ``(merged, dropped)`` where ``dropped`` counts records
        lost to ring overflow (writer lapped the reader).  Records from
        other trace ids (a previous telemetry session's leftovers) are
        skipped silently — they belong to nobody reachable any more.
        """
        merged = dropped = 0
        for wid in range(self._ints.shape[0]):
            wrote = int(self._counts[wid])
            read = self._read[wid]
            if wrote - read > self._cap:
                dropped += wrote - read - self._cap
                read = wrote - self._cap
            for n in range(read, wrote):
                slot = n % self._cap
                (kind, phase, color, n_blocks, parent_id, trace_id,
                 sweep, pid) = (int(v) for v in self._ints[wid, slot])
                if trace_id != recorder.trace_id:
                    continue
                t0 = recorder.from_monotonic(
                    float(self._floats[wid, slot, 0]))
                dur = max(0.0, float(self._floats[wid, slot, 1]))
                name = KIND_NAMES.get(kind, f"procexec.worker.{kind}")
                attrs = {
                    "worker": wid,
                    "phase": phase,
                    "colour": color,
                    "trace_id": f"{trace_id:016x}",
                }
                if kind == KIND_EXEC:
                    attrs["n_blocks"] = n_blocks
                if sweep_names is not None \
                        and 0 <= sweep < len(sweep_names):
                    attrs["sweep"] = sweep_names[sweep]
                recorder.add_record(SpanRecord(
                    name=name, ts=t0, dur=dur, thread=wid,
                    span_id=self._next_foreign_id,
                    parent_id=parent_id if parent_id >= 0 else None,
                    kind="span", attrs=attrs, pid=pid))
                self._next_foreign_id -= 1
                merged += 1
            self._read[wid] = wrote
        return merged, dropped
