#!/usr/bin/env python3
"""s-step Krylov workload: basis generation through the MPK kernel.

s-step Krylov methods (the paper's Section VI, refs [46]-[48]) extend
the Krylov space by ``s`` vectors per global step; the extension is a
matrix-powers computation ``[q, Aq, ..., A^s q]``.  This example builds
the monomial block with one FBMPK call, orthonormalises it, and shows
the resulting Ritz values converging to dense-LAPACK eigenvalues — while
counting matrix reads against the one-SpMV-per-step classic Lanczos.

Run:  python examples/sstep_krylov.py [n_rows] [s] [blocks]
"""

import sys

import numpy as np

from repro import build_fbmpk_operator, fbmpk_plan
from repro.matrices import generate_fem_shell
from repro.solvers import lanczos, ritz_values, sstep_krylov_basis


def main() -> None:
    n_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    s = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    blocks = int(sys.argv[3]) if len(sys.argv) > 3 else 5
    a = generate_fem_shell(n_rows, nnz_per_row=20, seed=11)
    print(f"matrix: {a!r}")
    op = build_fbmpk_operator(a, strategy="abmc", block_size=1)
    rng = np.random.default_rng(2)

    # --- s-step basis accumulation -----------------------------------
    basis_cols = []
    q = rng.standard_normal(a.n_rows)
    for blk in range(blocks):
        block = sstep_krylov_basis(op, q, s)
        # Orthogonalise against everything collected so far.  Two passes
        # of classical Gram-Schmidt ("twice is enough"): monomial blocks
        # are ill-conditioned and a single pass leaves enough residual
        # overlap to corrupt the Rayleigh-Ritz values.
        for _ in range(2):
            for prev in basis_cols:
                block -= prev @ (prev.T @ block)
        q_fact, r_fact = np.linalg.qr(block)
        keep = np.abs(np.diag(r_fact)) > 1e-8
        if not keep.any():
            break
        basis_cols.append(q_fact[:, keep])
        q = basis_cols[-1][:, -1]
    v = np.concatenate(basis_cols, axis=1)
    m = v.shape[1]
    # Rayleigh-Ritz on the collected space.
    h = v.T @ np.column_stack([a.matvec(v[:, j]) for j in range(m)])
    ritz_sstep = np.linalg.eigvalsh(0.5 * (h + h.T))

    # --- classic Lanczos with the same space dimension ----------------
    _, alpha, beta = lanczos(a, m, q0=rng.standard_normal(a.n_rows))
    ritz_classic = ritz_values(alpha, beta)

    reads_sstep = blocks * fbmpk_plan(s).matrix_equivalents
    reads_classic = float(m)
    print(f"Krylov dimension: {m}")
    print(f"matrix reads: s-step/FBMPK {reads_sstep:.1f} vs classic "
          f"Lanczos {reads_classic:.1f}")

    top = 3
    print(f"top-{top} Ritz values (s-step)  : "
          f"{np.sort(ritz_sstep)[-top:]}")
    print(f"top-{top} Ritz values (classic) : "
          f"{np.sort(ritz_classic)[-top:]}")
    if a.n_rows <= 4000:
        dense = np.linalg.eigvalsh(a.to_dense())
        print(f"top-{top} dense eigenvalues    : {dense[-top:]}")
        lead = float(np.sort(ritz_sstep)[-1])
        err = abs(lead - dense[-1]) / abs(dense[-1])
        print(f"relative error of leading s-step Ritz value: {err:.2e}")
        # Rayleigh-Ritz on an orthonormal basis can never overshoot the
        # spectrum; accuracy of the leading value scales with the Krylov
        # dimension (small m on clustered spectra converges slowly).
        assert lead <= dense[-1] + 1e-8
        assert err < (1e-4 if m >= 20 else 2e-2)
    print("s-step pipeline verified.")


if __name__ == "__main__":
    main()
