#!/usr/bin/env python3
"""Distributed MPK: standard exchanges vs communication avoidance.

The paper's Section VII argues a distributed implementation benefits
directly from FBMPK's node-local gains, and its related work (Section
VI) contrasts with communication-avoiding Krylov methods.  This example
runs the in-process SPMD simulator: a matrix is row-partitioned over P
simulated ranks, ``A^k x`` is computed with (a) k halo exchanges and
(b) one k-deep ghost-zone exchange (PA1), results are verified against
the serial kernel, and the communication tallies are compared on a
latency-bound and a bandwidth-bound network.

Run:  python examples/distributed_mpk.py [n_rows] [ranks] [k]
"""

import sys

import numpy as np

from repro.core.mpk import mpk_standard
from repro.distributed import (
    distributed_mpk,
    distributed_mpk_ca,
    partition_rows,
)
from repro.matrices import generate_fem_shell


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    ranks = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    k = int(sys.argv[3]) if len(sys.argv) > 3 else 6

    a = generate_fem_shell(n, nnz_per_row=20, seed=13)
    print(f"matrix: {a!r}, partitioned over {ranks} ranks, k={k}")
    part = partition_rows(a, ranks)
    halos = [b.halo_size for b in part.blocks]
    print(f"depth-1 halo sizes per rank: min {min(halos)}, "
          f"max {max(halos)}")

    x = np.random.default_rng(0).standard_normal(n)
    reference = mpk_standard(a, x, k)

    y_std, s_std = distributed_mpk(part, x, k)
    y_ca, s_ca = distributed_mpk_ca(part, x, k)
    assert np.allclose(y_std, reference, rtol=1e-8, atol=1e-10)
    assert np.allclose(y_ca, reference, rtol=1e-8, atol=1e-10)
    print("both distributed strategies reproduce the serial result.")

    print(f"\nstandard:  {s_std.rounds} rounds, {s_std.messages} messages, "
          f"{s_std.volume_doubles} doubles")
    print(f"comm-avoiding: {s_ca.rounds} round, {s_ca.messages} messages, "
          f"{s_ca.volume_doubles} doubles, "
          f"{s_ca.redundant_flops} redundant flops")

    nets = {
        "latency-bound (50us, 10GB/s)": dict(latency_s=5e-5,
                                             bw_doubles_per_s=1.25e9),
        "bandwidth-bound (0.1us, 160MB/s)": dict(latency_s=1e-7,
                                                 bw_doubles_per_s=2e7),
    }
    print()
    for label, params in nets.items():
        t_std = s_std.time_seconds(**params)
        t_ca = s_ca.time_seconds(**params)
        winner = "CA" if t_ca < t_std else "standard"
        print(f"{label}: standard {t_std * 1e3:.3f}ms, "
              f"CA {t_ca * 1e3:.3f}ms -> {winner} wins")
    print("\ndistributed pipeline verified.")


if __name__ == "__main__":
    main()
