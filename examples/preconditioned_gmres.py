#!/usr/bin/env python3
"""Unsymmetric solve: GMRES with an FBMPK-powered polynomial
preconditioner.

Two of the paper's evaluation matrices (cage14, ML_Geer) are unsymmetric;
this example solves a cage-like system with restarted GMRES, un- and
right-preconditioned by a truncated Neumann series ``M^{-1} ~ A^{-1}``.
Every preconditioner application is a fixed ``sum alpha_i A^i r`` — an
SSpMV — evaluated through the FBMPK pipeline, so each application costs
``~(m+1)/2`` matrix reads instead of ``m``.  The FBMPK preprocessing is
done once and amortised over every GMRES iteration, the usage pattern
the paper's Section V-F argument is about.

Run:  python examples/preconditioned_gmres.py [n_rows] [degree]
"""

import sys

import numpy as np

from repro.matrices import generate_cage_digraph
from repro.solvers import NeumannPreconditioner, gmres


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    degree = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    a = generate_cage_digraph(n, nnz_per_row=18, seed=21)
    print(f"unsymmetric system: {a!r}")
    rng = np.random.default_rng(0)
    x_true = rng.standard_normal(a.n_rows)
    b = a.matvec(x_true)

    print("\n-- plain GMRES(30)")
    plain = gmres(a, b, tol=1e-9, restart=30)
    print(f"   converged={plain.converged} in {plain.iterations} "
          f"iterations ({plain.iterations} matrix reads)")

    print(f"\n-- GMRES(30) right-preconditioned by Neumann(m={degree}) "
          "via FBMPK")
    pre = NeumannPreconditioner(a, degree=degree)
    res = gmres(lambda v: a.matvec(pre(v)), b, tol=1e-9, restart=30)
    x = pre(res.x)
    rel = np.linalg.norm(a.matvec(x) - b) / np.linalg.norm(b)
    reads_per_it = 1 + pre.matrix_reads_per_apply()
    reads_plain_pre = 1 + degree
    print(f"   converged={res.converged} in {res.iterations} iterations")
    print(f"   true relative residual: {rel:.2e}")
    print(f"   matrix reads/iteration: {reads_per_it:.1f} via FBMPK "
          f"vs {reads_plain_pre} via plain SpMV preconditioning")
    print(f"   total matrix reads: "
          f"{res.iterations * reads_per_it:.0f} (FBMPK) vs "
          f"{res.iterations * reads_plain_pre} (plain pre) vs "
          f"{plain.iterations} (no pre)")

    err = np.linalg.norm(x - x_true) / np.linalg.norm(x_true)
    print(f"   error vs ground truth: {err:.2e}")
    assert res.converged and rel < 1e-8
    assert res.iterations <= plain.iterations
    print("\npreconditioned pipeline verified.")


if __name__ == "__main__":
    main()
