#!/usr/bin/env python3
"""Multigrid workload: polynomial-smoothed V-cycles on a Poisson problem.

Multigrid methods are one of the paper's motivating MPK consumers
(Section I, ref [22]): the smoother applies a low-degree polynomial in
``A`` on every level visit — a sequence of SpMVs on the same matrix.
This example solves a 2-D Poisson-like system three ways and reports
iteration counts and SSpMV volume:

* plain CG (one SpMV per iteration — the no-MPK baseline);
* stationary two-level V-cycles with a Chebyshev (SSpMV) smoother;
* CG preconditioned by one V-cycle per iteration.

Run:  python examples/multigrid_poisson.py [grid_n]
"""

import sys

import numpy as np

from repro.matrices import poisson2d
from repro.solvers import TwoLevelMultigrid, conjugate_gradient


def main() -> None:
    grid = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    a = poisson2d(grid, seed=7)
    n = a.n_rows
    print(f"Poisson-like system: {a!r}")
    rng = np.random.default_rng(0)
    x_true = rng.standard_normal(n)
    b = a.matvec(x_true)

    print("\n-- plain CG")
    res = conjugate_gradient(a, b, tol=1e-9)
    print(f"   converged={res.converged} in {res.iterations} iterations "
          f"({res.iterations} SpMVs)")
    print(f"   error vs ground truth: "
          f"{np.linalg.norm(res.x - x_true) / np.linalg.norm(x_true):.2e}")

    print("\n-- stationary V-cycles, Chebyshev smoother (SSpMV pattern)")
    mg = TwoLevelMultigrid(a, aggregate_size=16, smoother="chebyshev",
                           pre_steps=2, post_steps=2)
    x_mg, cycles, ok = mg.solve(b, tol=1e-9)
    spmv_per_cycle = (mg.pre_steps + mg.post_steps + 1) + 2  # smooth+resid
    print(f"   converged={ok} in {cycles} V-cycles "
          f"(~{cycles * spmv_per_cycle} SpMVs, all on the same A — the "
          "SSpMV reuse FBMPK targets)")
    print(f"   error vs ground truth: "
          f"{np.linalg.norm(x_mg - x_true) / np.linalg.norm(x_true):.2e}")

    print("\n-- CG preconditioned by one V-cycle")
    res_pcg = conjugate_gradient(a, b, tol=1e-9,
                                 preconditioner=mg.as_preconditioner())
    print(f"   converged={res_pcg.converged} in {res_pcg.iterations} "
          f"iterations (vs {res.iterations} unpreconditioned)")
    assert res_pcg.iterations < res.iterations
    print("\nmultigrid pipeline verified.")


if __name__ == "__main__":
    main()
