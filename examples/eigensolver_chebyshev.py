#!/usr/bin/env python3
"""Eigenvalue workload: Chebyshev-filtered subspace iteration via FBMPK.

The paper motivates SSpMV with eigensolvers (ChASE, EVSL — refs [18],
[19]): a Chebyshev filter ``T_m(scaled A)`` amplifies the wanted end of
the spectrum and is nothing but a degree-``m`` polynomial in ``A``
applied to the iterate block.  This example

1. builds an SPD matrix and brackets its spectrum with Gershgorin discs;
2. runs filtered power iteration towards the largest eigenvalue, once
   with the classic per-SpMV recurrence and once with the FBMPK fused
   pipeline (same filter, ~half the matrix reads);
3. cross-checks both against dense LAPACK eigenvalues.

Run:  python examples/eigensolver_chebyshev.py [grid_n]
"""

import sys

import numpy as np

from repro import build_fbmpk_operator
from repro.matrices import poisson2d
from repro.solvers import (
    chebyshev_apply_fbmpk,
    chebyshev_apply_recurrence,
    gershgorin_bounds,
    power_iteration,
)


def filtered_iteration(apply_filter, x0, steps):
    """Generic filtered power iteration: x <- normalise(p(A) x)."""
    x = x0 / np.linalg.norm(x0)
    for _ in range(steps):
        x = apply_filter(x)
        x /= np.linalg.norm(x)
    return x


def main() -> None:
    grid = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    a = poisson2d(grid, seed=3)
    n = a.n_rows
    print(f"matrix: {a!r}")

    lo, hi = gershgorin_bounds(a)
    print(f"Gershgorin spectrum bracket: [{lo:.3f}, {hi:.3f}]")
    # Gershgorin overestimates the top; get a cheap lambda_max estimate
    # first (a few power steps), then build the filter so the *unwanted*
    # lower spectrum maps onto [-1, 1] where Chebyshev stays bounded and
    # the wanted top edge is amplified.
    lam_est, _, _ = power_iteration(a, tol=1e-4, max_iter=50)
    degree = 10
    interval = (lo, lo + 0.9 * (lam_est - lo))
    print(f"rough lambda_max estimate: {lam_est:.4f}; damping "
          f"[{interval[0]:.3f}, {interval[1]:.3f}]")

    print("preprocessing FBMPK operator (one-off)...")
    op = build_fbmpk_operator(a, strategy="abmc", block_size=1)

    rng = np.random.default_rng(1)
    x0 = rng.standard_normal(n)
    steps = 12

    x_ref = filtered_iteration(
        lambda v: chebyshev_apply_recurrence(a, v, degree, interval),
        x0, steps)
    lam_ref = float(x_ref @ a.matvec(x_ref))

    x_fb = filtered_iteration(
        lambda v: chebyshev_apply_fbmpk(op, v, degree, interval),
        x0, steps)
    lam_fb = float(x_fb @ a.matvec(x_fb))

    print(f"filtered iteration, recurrence pipeline: lambda = {lam_ref:.10f}"
          f"   ({steps} filters x {degree} matrix reads)")
    print(f"filtered iteration, FBMPK pipeline     : lambda = {lam_fb:.10f}"
          f"   ({steps} filters x ~{(degree + 1) // 2 + 1} matrix reads)")

    lam_power, _, its = power_iteration(a, tol=1e-12)
    print(f"plain power iteration                  : lambda = "
          f"{lam_power:.10f} in {its} SpMVs")

    if n <= 4000:
        dense_top = float(np.linalg.eigvalsh(a.to_dense())[-1])
        print(f"dense LAPACK reference                 : lambda = "
              f"{dense_top:.10f}")
        assert abs(lam_fb - dense_top) < 1e-5 * max(abs(dense_top), 1.0)
    assert abs(lam_fb - lam_ref) < 1e-6
    print("both pipelines agree.")


if __name__ == "__main__":
    main()
