#!/usr/bin/env python3
"""Platform study: predicted FBMPK behaviour across the Table I machines.

Uses the machine models to answer the questions the paper's evaluation
answers with hardware: how much does FBMPK gain on each platform, how
does the gain grow with k, where does DRAM traffic go, and when does the
BtB layout matter?  (The model layer is this reproduction's substitute
for the FT 2000+/ThunderX2/KP 920/Xeon testbed; see DESIGN.md.)

Run:  python examples/platform_study.py [matrix_name]
"""

import sys

from repro.bench import format_table, geomean
from repro.machine import PLATFORMS, predict_mpk_time, predict_speedup
from repro.matrices import TABLE2, get_matrix_info
from repro.memsim import fbmpk_traffic, mpk_standard_traffic


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "Flan_1565"
    info = get_matrix_info(name)
    stats = info.traffic_stats()
    print(f"matrix: {info.name} — {info.rows:,} rows, {info.nnz:,} nnz, "
          f"{info.nnz_per_row:.1f} nnz/row ({info.domain})\n")

    rows = []
    for k in (3, 5, 7, 9):
        rows.append([k] + [predict_speedup(p, stats, k=k)
                           for p in PLATFORMS])
    print(format_table(["k"] + [p.name for p in PLATFORMS], rows,
                       title="predicted FBMPK speedup over baseline"))

    print()
    rows = []
    for p in PLATFORMS:
        cache = p.effective_cache_bytes(p.cores)
        res = p.total_last_level_bytes()
        std = mpk_standard_traffic(stats, 5, cache,
                                   residency_cache_bytes=res)
        fb = fbmpk_traffic(stats, 5, cache, residency_cache_bytes=res)
        fb_nobtb = fbmpk_traffic(stats, 5, cache, btb=False,
                                 residency_cache_bytes=res)
        rows.append([
            p.name,
            f"{std.total_bytes / 1e9:.2f}",
            f"{fb.total_bytes / 1e9:.2f}",
            f"{100 * fb.total_bytes / std.total_bytes:.0f}%",
            f"{100 * (fb_nobtb.total_bytes - fb.total_bytes) / fb.total_bytes:.1f}%",
        ])
    print(format_table(
        ["platform", "std GB", "FBMPK GB", "ratio", "BtB saving"],
        rows, title="modelled DRAM traffic for A^5 x (per platform cache)"))

    print()
    rows = []
    for p in PLATFORMS:
        pred = predict_mpk_time(p, stats, 5)
        rows.append([p.name, f"{pred.t_memory * 1e3:.1f}",
                     f"{pred.t_compute * 1e3:.1f}",
                     f"{pred.t_sync * 1e3:.2f}",
                     f"{pred.total * 1e3:.1f}"])
    print(format_table(
        ["platform", "memory ms", "compute ms", "sync ms", "total ms"],
        rows, title="predicted FBMPK runtime decomposition (k=5, all cores)"))

    print()
    means = [geomean([predict_speedup(p, m.traffic_stats(), k=5)
                      for m in TABLE2]) for p in PLATFORMS]
    print("dataset-wide average speedups (k=5): "
          + "  ".join(f"{p.name}: {m:.2f}x"
                      for p, m in zip(PLATFORMS, means)))
    print("paper (Fig 7):                       FT 2000+: 1.50x  "
          "Thunder X2: 1.54x  KP 920: 1.47x  Intel Xeon: 1.73x")


if __name__ == "__main__":
    main()
