#!/usr/bin/env python3
"""Quickstart: compute A^k x with FBMPK and verify the traffic saving.

Walks through the library's core workflow:

1. build (or load) a sparse matrix;
2. run the one-off FBMPK preprocessing (split + ABMC + group extraction);
3. compute ``A^k x`` and compare against the standard MPK baseline;
4. read the instrumented access counters to see the ``(k+1)/2``-reads
   pipeline in action;
5. evaluate a generic combination ``y = sum alpha_i A^i x``.

Run:  python examples/quickstart.py [n_rows] [k]
"""

import sys

import numpy as np

from repro import (
    KernelCounter,
    build_fbmpk_operator,
    fbmpk_plan,
    mpk_standard,
    sspmv_fbmpk,
    sspmv_standard,
    standard_plan,
)
from repro.matrices import generate_fem_shell


def main() -> None:
    n_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 5

    print(f"== 1. building a shell-FEM-like sparse matrix (~{n_rows} rows)")
    a = generate_fem_shell(n_rows, nnz_per_row=35, seed=42)
    print(f"   {a!r}")

    print("== 2. one-off FBMPK preprocessing (split + ABMC + groups)")
    op = build_fbmpk_operator(a, strategy="abmc", block_size=1)
    print(f"   sweep groups: {op.groups.n_forward} forward / "
          f"{op.groups.n_backward} backward "
          f"(barriers per power pair: {op.barriers_per_pair()})")

    print(f"== 3. computing A^{k} x with both pipelines")
    x = np.random.default_rng(0).standard_normal(a.n_rows)
    y_baseline = mpk_standard(a, x, k)
    counter = KernelCounter()
    y_fbmpk = op.power(x, k, counter=counter)
    err = float(np.abs(y_fbmpk - y_baseline).max())
    print(f"   max |FBMPK - standard| = {err:.2e}")
    assert np.allclose(y_fbmpk, y_baseline, rtol=1e-8, atol=1e-10)

    print("== 4. matrix reads (the paper's headline saving)")
    plan_fb, plan_std = fbmpk_plan(k), standard_plan(k)
    print(f"   standard MPK : {plan_std.matrix_equivalents:.1f} full reads "
          f"of A")
    print(f"   FBMPK plan   : {plan_fb.matrix_equivalents:.1f} full reads "
          f"(L x{plan_fb.l_passes}, U x{plan_fb.u_passes})")
    print(f"   FBMPK counted: L x{counter.l_passes}, U x{counter.u_passes} "
          "(instrumented at run time)")

    print("== 5. generic SSpMV: y = x + 2 A x + 0.5 A^3 x")
    alphas = [1.0, 2.0, 0.0, 0.5]
    y1 = sspmv_standard(a, x, alphas)
    y2 = sspmv_fbmpk(op, x, alphas)
    print(f"   max difference = {float(np.abs(y1 - y2).max()):.2e}")
    assert np.allclose(y1, y2, rtol=1e-8, atol=1e-10)
    print("done.")


if __name__ == "__main__":
    main()
